package abndp

import (
	"fmt"
	"testing"

	"abndp/internal/apps"
	"abndp/internal/ckpt"
	"abndp/internal/ndp"
)

// parityApps are the paper's six core workloads the acceptance criteria
// name for checkpoint/parallel hash parity.
var parityApps = []string{"pr", "bfs", "sssp", "gcn", "knn", "spmv"}

// runHashed simulates one workload and returns the golden result hash plus
// the executed event count. prepare, when non-nil, configures the fresh
// system (checkpoint shard, parallel workers) before the run.
func runHashed(t *testing.T, app string, d Design, cfg Config, prepare func(*ndp.System)) (uint64, int64) {
	t.Helper()
	a, err := apps.New(app, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if prepare != nil {
		prepare(sys)
	}
	res := sys.Run(a)
	if res.Events <= 0 {
		t.Fatalf("%s/%v: executed %d events", app, d, res.Events)
	}
	return ResultHash(res), res.Events
}

// TestCheckpointAndParallelHashParity is the acceptance test of the
// checkpoint/parallel engine paths: for all six workloads × fault plans,
// a cold serial run, a store-priming run, a warm (store-hit) run, and a
// warm run with -engine=parallel workers must produce byte-identical
// results (equal ResultHash) and identical event counts. Run under -race
// in CI's perf-smoke job to also certify the worker pool.
func TestCheckpointAndParallelHashParity(t *testing.T) {
	cfg := smallConfig()
	plans := map[string]string{
		"nofault": "",
		"kills":   "kill:1@20000;retry:16",
		"slow":    "slow:2:1.5@1000",
	}
	for name, spec := range plans {
		for _, app := range parityApps {
			t.Run(name+"/"+app, func(t *testing.T) {
				c := cfg
				if spec != "" {
					p, err := ParseFaults(spec)
					if err != nil {
						t.Fatal(err)
					}
					c.Faults = p
				}
				cold, coldEv := runHashed(t, app, DesignO, c, nil)

				store := ckpt.NewStore(0)
				shardFor := func(sys *ndp.System) *ckpt.Shard {
					return store.Shard(app + "|" + sys.Design.String() + "|" + sys.Cfg.PrefixKey())
				}
				prime, primeEv := runHashed(t, app, DesignO, c, func(sys *ndp.System) {
					sys.SetCheckpoint(shardFor(sys))
				})
				warm, warmEv := runHashed(t, app, DesignO, c, func(sys *ndp.System) {
					sys.SetCheckpoint(shardFor(sys))
				})
				par, parEv := runHashed(t, app, DesignO, c, func(sys *ndp.System) {
					sys.SetCheckpoint(shardFor(sys))
					sys.SetParallelWorkers(4)
				})

				if prime != cold || warm != cold || par != cold {
					t.Fatalf("hash divergence: cold=%x prime=%x warm=%x parallel=%x",
						cold, prime, warm, par)
				}
				if primeEv != coldEv || warmEv != coldEv || parEv != coldEv {
					t.Fatalf("event-count divergence: cold=%d prime=%d warm=%d parallel=%d",
						coldEv, primeEv, warmEv, parEv)
				}
				st := store.Stats()
				if spec == "" {
					if st.Hits == 0 || st.Inserts == 0 {
						t.Fatalf("fault-free warm run never hit the store: %+v", st)
					}
				} else if name == "kills" {
					// A kill plan installs a dead mask at construction, so
					// the store must never have been consulted.
					if st.Hits != 0 || st.Misses != 0 || st.Inserts != 0 {
						t.Fatalf("store consulted under a kill plan: %+v", st)
					}
				}
			})
		}
	}
}

// TestCheckpointParityLowestDistance covers the second placement kind that
// consumes precomputed vectors (designs Sm/Sl/C use lowest-distance).
func TestCheckpointParityLowestDistance(t *testing.T) {
	cfg := smallConfig()
	for _, d := range []Design{DesignSm, DesignC} {
		t.Run(d.String(), func(t *testing.T) {
			cold, _ := runHashed(t, "pr", d, cfg, nil)
			store := ckpt.NewStore(0)
			for i := 0; i < 2; i++ {
				got, _ := runHashed(t, "pr", d, cfg, func(sys *ndp.System) {
					sys.SetCheckpoint(store.Shard("pr|" + sys.Design.String() + "|" + sys.Cfg.PrefixKey()))
					sys.SetParallelWorkers(2)
				})
				if got != cold {
					t.Fatalf("run %d: hash %x != cold %x", i, got, cold)
				}
			}
			if st := store.Stats(); st.Hits == 0 {
				t.Fatalf("store never hit: %+v", st)
			}
		})
	}
}

// TestPrefixShardSharedAcrossSchedulerKnobs pins the warm-sweep mechanism:
// two configs differing only in scheduler knobs map to the same shard, and
// the second run hits vectors the first inserted while still producing its
// own (different) result.
func TestPrefixShardSharedAcrossSchedulerKnobs(t *testing.T) {
	store := ckpt.NewStore(0)
	cfg := smallConfig()
	run := func(alpha float64) (uint64, string) {
		c := cfg
		c.HybridAlpha = alpha
		var key string
		h, _ := runHashed(t, "pr", DesignO, c, func(sys *ndp.System) {
			sh := store.Shard("pr|" + sys.Design.String() + "|" + sys.Cfg.PrefixKey())
			key = sh.Key()
			sys.SetCheckpoint(sh)
		})
		return h, key
	}
	h0, k0 := run(0)
	before := store.Stats()
	h1, k1 := run(4)
	after := store.Stats()
	if k0 != k1 {
		t.Fatalf("scheduler-knob variants mapped to different shards:\n%s\n%s", k0, k1)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("warm run gained no hits: before=%+v after=%+v", before, after)
	}
	if h0 == h1 {
		t.Fatal(fmt.Sprintf("alpha=0 and alpha=4 produced identical results (%x) — knob has no effect at this scale?", h0))
	}
}
