package abndp

import "testing"

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MeshX, cfg.MeshY = 2, 2
	cfg.UnitBytes = 16 << 20
	return cfg
}

func smallParams() Params { return Params{Scale: 8, Degree: 6, Seed: 3} }

func TestRunAllWorkloadsUnderO(t *testing.T) {
	cfg := smallConfig()
	for _, w := range Workloads() {
		res, err := Run(w, DesignO, cfg, smallParams())
		if err != nil {
			t.Fatalf("Run(%q): %v", w, err)
		}
		if res.Makespan <= 0 || res.Tasks <= 0 {
			t.Fatalf("Run(%q): empty result %+v", w, res)
		}
		if res.App != w || res.Design != DesignO {
			t.Fatalf("Run(%q): mislabeled result", w)
		}
	}
}

func TestRunRejectsHostDesign(t *testing.T) {
	if _, err := Run("pr", DesignH, smallConfig(), smallParams()); err == nil {
		t.Fatal("Run must reject DesignH")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if _, err := Run("nope", DesignO, smallConfig(), smallParams()); err == nil {
		t.Fatal("Run must reject unknown workloads")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.CoresPerUnit = 0
	if _, err := Run("pr", DesignB, cfg, smallParams()); err == nil {
		t.Fatal("Run must reject invalid configs")
	}
}

func TestRunHost(t *testing.T) {
	r, err := RunHost("pr", smallConfig(), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 {
		t.Fatalf("host seconds = %v", r.Seconds)
	}
}

func TestCharacterize(t *testing.T) {
	fr, err := Characterize("spmv", smallConfig(), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Instructions <= 0 || fr.Footprint <= 0 {
		t.Fatalf("characterization empty: %+v", fr)
	}
}

func TestParseDesignRoundTrip(t *testing.T) {
	for _, d := range AllDesigns {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDesign(%v) = %v, %v", d, got, err)
		}
	}
}

// The headline claim on a small system: full ABNDP (O) outperforms the
// baseline B on a skewed graph workload, with fewer remote hops than the
// work-stealing design Sl.
func TestABNDPBeatsBaselineOnPageRank(t *testing.T) {
	cfg := smallConfig()
	// Large enough that camp caching and load spreading have room to work
	// on the shrunken 2x2 test machine.
	p := Params{Scale: 12, Degree: 8, Iters: 3, Seed: 1}
	rB, err := Run("pr", DesignB, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	rO, err := Run("pr", DesignO, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	rSl, err := Run("pr", DesignSl, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if rO.Makespan >= rB.Makespan {
		t.Fatalf("O makespan %d not better than B %d", rO.Makespan, rB.Makespan)
	}
	if rO.InterHops >= rSl.InterHops {
		t.Fatalf("O hops %d should undercut Sl hops %d", rO.InterHops, rSl.InterHops)
	}
}

func TestRunAppTracedEmitsEveryTask(t *testing.T) {
	app, err := NewApp("spmv", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var traces []TaskTrace
	res, err := RunAppTraced(app, DesignO, smallConfig(), func(tr TaskTrace) {
		traces = append(traces, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(traces)) != res.Tasks {
		t.Fatalf("traced %d tasks, ran %d", len(traces), res.Tasks)
	}
	for _, tr := range traces {
		if tr.Dur <= 0 || tr.Lines <= 0 {
			t.Fatalf("malformed trace %+v", tr)
		}
		if tr.Cycle > res.Makespan {
			t.Fatalf("trace completion %d beyond makespan %d", tr.Cycle, res.Makespan)
		}
	}
}

func TestNewSystemExposesTopology(t *testing.T) {
	sys, err := NewSystem(smallConfig(), DesignO)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topo.Units() != 32 {
		t.Fatalf("units = %d, want 32 on the 2x2 test machine", sys.Topo.Units())
	}
	locs := sys.Camps.Locations(Line(123456))
	if len(locs) != sys.Topo.Groups() {
		t.Fatalf("camp locations = %d, want %d", len(locs), sys.Topo.Groups())
	}
	if _, err := NewSystem(smallConfig(), DesignH); err == nil {
		t.Fatal("NewSystem must reject DesignH")
	}
}

func TestTorusConfigRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Torus = true
	res, err := Run("pr", DesignO, cfg, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Fatal("torus run executed nothing")
	}
}

// The headline ordering must not be a seed artifact: across several input
// seeds, full ABNDP wins on average and never collapses below the baseline.
func TestHeadlineHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	cfg := smallConfig()
	var ratios []float64
	for _, seed := range []int64{1, 7, 1234} {
		p := Params{Scale: 12, Degree: 8, Iters: 3, Seed: seed}
		rB, err := Run("pr", DesignB, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		rO, err := Run("pr", DesignO, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rB.Makespan) / float64(rO.Makespan)
		ratios = append(ratios, ratio)
		if ratio < 0.9 {
			t.Fatalf("seed %d: O collapsed to %.2fx of B", seed, ratio)
		}
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if mean := sum / float64(len(ratios)); mean < 1.0 {
		t.Fatalf("mean O-over-B speedup %.3f < 1 across seeds %v", mean, ratios)
	}
}
