module abndp

go 1.22
