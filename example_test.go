package abndp_test

import (
	"fmt"

	"abndp"
)

// Example runs Page Rank under the baseline and full-ABNDP designs on a
// small machine and prints which one wins. (Runnable documentation: the
// output is deterministic.)
func Example() {
	cfg := abndp.DefaultConfig()
	cfg.MeshX, cfg.MeshY = 2, 2
	cfg.UnitBytes = 16 << 20
	p := abndp.Params{Scale: 10, Degree: 8, Iters: 3, Seed: 1}

	base, err := abndp.Run("pr", abndp.DesignB, cfg, p)
	if err != nil {
		panic(err)
	}
	opt, err := abndp.Run("pr", abndp.DesignO, cfg, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ABNDP faster: %v\n", opt.Makespan < base.Makespan)
	fmt.Printf("fewer remote hops than baseline: %v\n", opt.InterHops < base.InterHops)
	// Output:
	// ABNDP faster: true
	// fewer remote hops than baseline: true
}

// ExampleNewProgram ports a trivial workload to the Swarm-style task model
// of §3.1: each task increments a counter for its element, touching only
// its own line.
func ExampleNewProgram() {
	const n = 64
	counts := make([]int, n)
	var arr *abndp.Array

	body := func(rt *abndp.Runtime, t *abndp.Task) {
		counts[t.Elem]++
		rt.Charge(5)
	}
	prog := abndp.NewProgram("count", func(rt *abndp.Runtime) {
		arr = rt.NewArray("count.elems", n, 16)
		for i := 0; i < n; i++ {
			rt.EnqueueTask(body, 0, abndp.Hint{Lines: []abndp.Line{arr.LineOf(i)}}, i)
		}
	})

	cfg := abndp.DefaultConfig()
	cfg.MeshX, cfg.MeshY = 2, 2
	cfg.UnitBytes = 16 << 20
	res, err := abndp.RunApp(prog, abndp.DesignO, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks: %d, every element once: %v\n", res.Tasks, counts[0] == 1 && counts[n-1] == 1)
	// Output:
	// tasks: 64, every element once: true
}

// ExampleCharacterize profiles a workload without running the timing model.
func ExampleCharacterize() {
	cfg := abndp.DefaultConfig()
	cfg.MeshX, cfg.MeshY = 2, 2
	cfg.UnitBytes = 16 << 20
	fr, err := abndp.Characterize("spmv", cfg, abndp.Params{Scale: 8, Degree: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("one task per matrix row: %v\n", fr.Tasks == 256)
	// Output:
	// one task per matrix row: true
}
