package abndp

import (
	"fmt"
	"math"

	"abndp/internal/apps"
	"abndp/internal/check"
	"abndp/internal/ndp"
	"abndp/internal/stats"
)

// Checker is the runtime invariant checker of internal/check. Install one
// on a System (System.SetChecker) to audit a run; AuditRun does this and
// more for the built-in workloads.
type Checker = check.Checker

// AuditReport is the structured outcome of an audited run: invariant
// evaluation counts, recorded violations, and the dual-run hashes.
type AuditReport = check.Report

// AuditViolation records one invariant breach.
type AuditViolation = check.Violation

// NewChecker returns an empty, non-fail-fast Checker.
func NewChecker() *Checker { return check.New() }

// ResultHash folds every deterministic field of a Result into one FNV-1a
// fingerprint — the basis of the dual-run determinism and fault-layer
// identity relations below.
func ResultHash(r *Result) uint64 { return ndp.ResultHash(r) }

// RunAppChecked simulates app under design d with the invariant checker
// armed and returns the result alongside the audit report. With failFast,
// the run stops at the first violation (the partial result is nil); the
// violation is still in the report. The checker is read-only: a checked
// run's result is byte-identical to an unchecked one.
func RunAppChecked(app App, d Design, cfg Config, failFast bool) (res *Result, rep *AuditReport, err error) {
	if d == DesignH {
		return nil, nil, fmt.Errorf("abndp: design H is the host baseline; use RunHost")
	}
	applied := d.Apply(cfg)
	if err := applied.Validate(); err != nil {
		return nil, nil, err
	}
	sys := ndp.NewSystem(cfg, d)
	c := check.New()
	c.FailFast = failFast
	sys.SetChecker(c)
	defer func() {
		if v := check.Recover(recover()); v != nil {
			res, rep, err = nil, c.Report(), nil
		}
	}()
	res = sys.Run(app)
	return res, c.Report(), nil
}

// AuditRun runs the full audit battery for a built-in workload under one
// design:
//
//  1. an audited run evaluating every runtime invariant (engine time
//     monotonicity, DRAM backlog accounting, Traveller LRU permutations,
//     scheduler placement verdicts, end-of-run conservation);
//  2. dual-run determinism — an unaudited rerun must produce an identical
//     ResultHash, which simultaneously proves the checker perturbed nothing
//     (rule meta.determinism);
//  3. fault-layer identity — when cfg.Faults is empty, a rerun with the
//     fault layer force-armed on that empty plan must also hash identically:
//     every fault probe site degrades to a no-op (rule meta.faultidentity);
//  4. unit-ID permutation invariance — aggregate statistics recomputed over
//     permuted copies of the per-unit table must not change (exact for
//     integer counters, 1e-9 relative for float sums; rule
//     meta.permutation).
//
// With failFast the audited run stops at the first violation and the
// battery is cut short (the report carries what was found). The returned
// error covers setup problems only (unknown workload, invalid config);
// invariant breaches land in the report, whose Ok method gives the verdict.
func AuditRun(workload string, d Design, cfg Config, p Params, failFast bool) (*Result, *AuditReport, error) {
	mkApp := func() (App, error) { return apps.New(workload, p) }
	app, err := mkApp()
	if err != nil {
		return nil, nil, err
	}
	res, rep, err := RunAppChecked(app, d, cfg, failFast)
	if err != nil {
		return nil, nil, err
	}
	if res == nil {
		return nil, rep, nil // fail-fast stop: skip the metamorphic battery
	}

	// Relation 2: dual-run determinism against an unaudited rerun.
	rep.Checks++
	appB, err := mkApp()
	if err != nil {
		return res, rep, err
	}
	resB, err := RunApp(appB, d, cfg)
	if err != nil {
		return res, rep, err
	}
	rep.HashA, rep.HashB = ResultHash(res), ResultHash(resB)
	if rep.HashA != rep.HashB {
		rep.Append("meta.determinism",
			"audited run hash %016x != unaudited rerun hash %016x", rep.HashA, rep.HashB)
	}

	// Relation 3: an armed-but-empty fault layer is the identity.
	if cfg.Faults.Empty() {
		rep.Checks++
		appC, err := mkApp()
		if err != nil {
			return res, rep, err
		}
		sysC, err := NewSystem(cfg, d)
		if err != nil {
			return res, rep, err
		}
		sysC.ArmFaultLayerForAudit()
		if h := ResultHash(sysC.Run(appC)); h != rep.HashA {
			rep.Append("meta.faultidentity",
				"armed-but-empty fault layer changed the result: %016x != %016x", h, rep.HashA)
		}
	}

	auditPermutation(res, rep)
	return res, rep, nil
}

// auditPermutation verifies relation 4: every aggregate derived from the
// per-unit statistics table is invariant under permuting the unit IDs.
func auditPermutation(res *Result, rep *AuditReport) {
	st := res.Stats
	n := len(st.Units)
	if n < 2 {
		return
	}
	baseHops := st.TotalInterHops()
	baseEnergy := st.TotalEnergy().Total()
	baseHit := st.CacheHitRate()
	baseImb := st.ImbalanceRatio()
	var baseTasks int64
	for i := range st.Units {
		baseTasks += st.Units[i].TasksRun
	}

	perm := func(name string, at func(i int) int) {
		rep.Checks++
		var p stats.System
		p.Units = make([]stats.Unit, n)
		for i := range p.Units {
			p.Units[i] = st.Units[at(i)]
		}
		if got := p.TotalInterHops(); got != baseHops {
			rep.Append("meta.permutation", "%s: inter-stack hops %d != %d", name, got, baseHops)
		}
		var tasks int64
		for i := range p.Units {
			tasks += p.Units[i].TasksRun
		}
		if tasks != baseTasks {
			rep.Append("meta.permutation", "%s: task total %d != %d", name, tasks, baseTasks)
		}
		// Float aggregates re-sum in a different order: exact to ~1e-9.
		if got := p.TotalEnergy().Total(); !relEq(got, baseEnergy, 1e-9) {
			rep.Append("meta.permutation", "%s: energy %v != %v", name, got, baseEnergy)
		}
		if got := p.CacheHitRate(); !relEq(got, baseHit, 1e-9) {
			rep.Append("meta.permutation", "%s: cache hit rate %v != %v", name, got, baseHit)
		}
		if got := p.ImbalanceRatio(); !relEq(got, baseImb, 1e-9) {
			rep.Append("meta.permutation", "%s: imbalance ratio %v != %v", name, got, baseImb)
		}
	}
	perm("reversal", func(i int) int { return n - 1 - i })
	perm("rotation", func(i int) int { return (i + 1) % n })
	perm("half-rotation", func(i int) int { return (i + n/2) % n })
}

// relEq reports |a-b| <= tol * max(|a|, |b|, 1).
func relEq(a, b, tol float64) bool {
	scale := math.Abs(a)
	if s := math.Abs(b); s > scale {
		scale = s
	}
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
