package abndp

import (
	"math"
	"testing"
)

// TestProgramPageRank writes Algorithm 1's Page Rank against the
// Swarm-style EnqueueTask API and checks it against the batch App
// implementation's semantics (a ring graph has the analytic answer 1/n).
func TestProgramPageRank(t *testing.T) {
	const (
		n     = 64
		iters = 5
		alpha = 0.85
	)
	// Ring graph: v -> (v+1) % n; in-neighbor of v is v-1.
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}

	var vdata *Array
	var taskPR TaskFunc

	hint := func(rt *Runtime, v int) Hint {
		in := (v - 1 + n) % n
		lines := []Line{vdata.LineOf(v)}
		lines = vdata.AppendLines(lines, in)
		return Hint{Lines: lines}
	}

	taskPR = func(rt *Runtime, tk *Task) {
		v := tk.Elem
		in := (v - 1 + n) % n
		// Every vertex has out-degree 1.
		next[v] = alpha*cur[in] + (1-alpha)/float64(n)
		rt.Charge(16)
		if tk.TS+1 < iters {
			rt.EnqueueTask(taskPR, tk.TS+1, hint(rt, v), v)
		}
	}

	prog := NewProgram("ringpr", func(rt *Runtime) {
		vdata = rt.NewArray("ring.vdata", n, 16)
		rt.AtBarrier(func(int64) {
			cur, next = next, cur
		})
		for v := 0; v < n; v++ {
			rt.EnqueueTask(taskPR, 0, hint(rt, v), v)
		}
	})

	res, err := RunApp(prog, DesignO, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != n*iters {
		t.Fatalf("ran %d tasks, want %d", res.Tasks, n*iters)
	}
	if res.Steps != iters {
		t.Fatalf("ran %d timestamps, want %d", res.Steps, iters)
	}
	// On a ring the stationary distribution is uniform.
	for v := 0; v < n; v++ {
		if math.Abs(cur[v]-1/float64(n)) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, cur[v], 1/float64(n))
		}
	}
}

func TestProgramChargeDefaults(t *testing.T) {
	var arr *Array
	body := func(rt *Runtime, tk *Task) {} // charges nothing
	prog := NewProgram("noop", func(rt *Runtime) {
		arr = rt.NewArray("noop", 8, 16)
		for i := 0; i < 8; i++ {
			rt.EnqueueTask(body, 0, Hint{Lines: []Line{arr.LineOf(i)}}, i)
		}
	})
	res, err := RunApp(prog, DesignB, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 8 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
}

func TestProgramSharedFunctionIdentity(t *testing.T) {
	// Two different closures must get distinct function IDs; the same
	// variable re-used must not.
	var arr *Array
	ranA, ranB := 0, 0
	var a, b TaskFunc
	a = func(rt *Runtime, tk *Task) { ranA++ }
	b = func(rt *Runtime, tk *Task) { ranB++ }
	prog := NewProgram("two", func(rt *Runtime) {
		arr = rt.NewArray("two", 4, 16)
		rt.EnqueueTask(a, 0, Hint{Lines: []Line{arr.LineOf(0)}}, 0)
		rt.EnqueueTask(b, 0, Hint{Lines: []Line{arr.LineOf(1)}}, 1)
		rt.EnqueueTask(a, 0, Hint{Lines: []Line{arr.LineOf(2)}}, 2)
	})
	if _, err := RunApp(prog, DesignB, smallConfig()); err != nil {
		t.Fatal(err)
	}
	if ranA != 2 || ranB != 1 {
		t.Fatalf("dispatch counts a=%d b=%d, want 2/1", ranA, ranB)
	}
}

func TestProgramEmptyHintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EnqueueTask with an empty hint must panic")
		}
	}()
	prog := NewProgram("bad", func(rt *Runtime) {
		rt.EnqueueTask(func(*Runtime, *Task) {}, 0, Hint{}, 0)
	})
	_, _ = RunApp(prog, DesignB, smallConfig())
}
