// Package abndp is an architectural simulator and reproduction of
// "ABNDP: Co-optimizing Data Access and Load Balance in Near-Data
// Processing" (Tian, Chen, Gao — ASPLOS 2023).
//
// It models a 3D-stacked-memory NDP system (by default 4x4 stacks x 8 NDP
// units) running task-based data-intensive workloads, and implements both
// of the paper's contributions — the distributed Traveller Cache with
// skewed camp locations, and the hybrid task scheduling policy — alongside
// every baseline design of Table 2.
//
// Quick start:
//
//	cfg := abndp.DefaultConfig()
//	res, err := abndp.Run("pr", abndp.DesignO, cfg, abndp.Params{})
//	if err != nil { ... }
//	fmt.Printf("cycles=%d hops=%d energy=%.1f uJ\n",
//		res.Makespan, res.InterHops, res.Energy.Total()/1e6)
//
// The seven designs (Table 2) are DesignH (host CPU only), DesignB
// (co-locate with the main element), DesignSm (lowest-distance), DesignSl
// (lowest-distance + work stealing), DesignSh (hybrid scheduling), DesignC
// (Traveller Cache with lowest-distance mapping), and DesignO (full ABNDP).
package abndp

import (
	"fmt"
	"io"
	"runtime"

	"abndp/internal/apps"
	"abndp/internal/ckpt"
	"abndp/internal/config"
	"abndp/internal/energy"
	"abndp/internal/fault"
	"abndp/internal/host"
	"abndp/internal/mem"
	"abndp/internal/ndp"
	"abndp/internal/obs"
	"abndp/internal/stats"
	"abndp/internal/task"
	"abndp/internal/topology"
)

// Config holds every system parameter (Table 1 defaults via DefaultConfig).
type Config = config.Config

// Design identifies one of the evaluated system designs (Table 2).
type Design = config.Design

// CacheKind selects the remote-data cache implementation (Figure 13).
type CacheKind = config.CacheKind

// Table 2 designs.
const (
	DesignH  = config.DesignH
	DesignB  = config.DesignB
	DesignSm = config.DesignSm
	DesignSl = config.DesignSl
	DesignSh = config.DesignSh
	DesignC  = config.DesignC
	DesignO  = config.DesignO
)

// Cache kinds for the Figure 13 ablation.
const (
	CacheTraveller = config.CacheTraveller
	CacheSRAM      = config.CacheSRAM
	CacheDRAMTags  = config.CacheDRAMTags
)

// Replacement selects the Traveller Cache victim policy.
type Replacement = config.Replacement

// Replacement policies (the paper ships random; LRU checks §4.4's claim).
const (
	ReplaceRandom = config.ReplaceRandom
	ReplaceLRU    = config.ReplaceLRU
)

// AllDesigns lists every design in Table 2 order; NDPDesigns omits H.
var (
	AllDesigns = config.AllDesigns
	NDPDesigns = config.NDPDesigns
)

// Params sizes a workload (zero values take per-workload defaults).
type Params = apps.Params

// App is a workload ported to the task-based execution model. Use NewApp
// for the built-in workloads or implement the interface for custom ones.
type App = ndp.App

// Result summarizes one simulated run.
type Result = ndp.Result

// EnergyBreakdown is the Figure 7 four-component energy split.
type EnergyBreakdown = energy.Breakdown

// SystemStats exposes the per-unit counters of a run.
type SystemStats = stats.System

// HostResult is the design-H execution estimate.
type HostResult = host.Result

// FaultPlan declares deterministic fault injection for a run; assign it to
// Config.Faults. The zero value injects nothing and is guaranteed
// zero-cost. See ParseFaults for the compact spec grammar.
type FaultPlan = fault.Plan

// FaultCounters are the recovery-event totals of a faulty run
// (Result.Stats.Faults).
type FaultCounters = stats.FaultCounters

// ParseFaults parses the semicolon-separated fault spec grammar of
// `abndpsim -faults` (see docs/FAULTS.md):
//
//	dram:PROB[:RETRIES] ; slow:UNITS:CORE[:CHAN][@FROM[-UNTIL]] ;
//	kill:UNITS@CYCLE ; link:STACK:DIR@CYCLE ; retry:N ; seed:N
func ParseFaults(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// The following aliases let users implement custom workloads against the
// App interface without access to the internal packages.

// Task is one unit of work in the bulk-synchronous task model (§3.1).
type Task = task.Task

// Hint carries a task's primary-data addresses and optional workload.
type Hint = task.Hint

// Line is a cacheline address.
type Line = mem.Line

// Array is a primary-data array laid out across the NDP units' DRAM.
type Array = mem.Array

// UnitID identifies one NDP unit.
type UnitID = topology.UnitID

// StackID identifies one memory stack.
type StackID = topology.StackID

// System is the simulated NDP machine handed to App.Setup.
type System = ndp.System

// ExecCtx is the execution context handed to App.Execute.
type ExecCtx = ndp.ExecCtx

// FunctionalProfile characterizes a workload independent of timing.
type FunctionalProfile = ndp.FunctionalResult

// Placement selects how array elements spread across units.
const (
	Interleave = mem.Interleave
	Blocked    = mem.Blocked
)

// DefaultConfig returns the Table 1 system configuration.
func DefaultConfig() Config { return config.Default() }

// Workloads lists the built-in workload names in Figure 6 order.
func Workloads() []string { return append([]string(nil), apps.Names...) }

// ParseDesign converts a design name ("B", "Sm", "O", ...) to a Design.
func ParseDesign(s string) (Design, error) { return config.ParseDesign(s) }

// NewApp builds a built-in workload by name.
func NewApp(name string, p Params) (App, error) { return apps.New(name, p) }

// Run simulates the named workload under a design. For DesignH it returns
// an error; use RunHost.
func Run(workload string, d Design, cfg Config, p Params) (*Result, error) {
	app, err := apps.New(workload, p)
	if err != nil {
		return nil, err
	}
	return RunApp(app, d, cfg)
}

// RunApp simulates a (possibly custom) workload under a design.
func RunApp(app App, d Design, cfg Config) (*Result, error) {
	return RunAppTraced(app, d, cfg, nil)
}

// TaskTrace describes one completed task (see RunAppTraced).
type TaskTrace = ndp.TaskTrace

// RunAppTraced is RunApp with an optional per-task completion callback for
// external analysis tooling (cmd/abndpsim -trace writes these as JSONL).
func RunAppTraced(app App, d Design, cfg Config, tracer func(TaskTrace)) (*Result, error) {
	if d == DesignH {
		return nil, fmt.Errorf("abndp: design H is the host baseline; use RunHost")
	}
	applied := d.Apply(cfg)
	if err := applied.Validate(); err != nil {
		return nil, err
	}
	sys := ndp.NewSystem(cfg, d)
	if tracer != nil {
		sys.SetTaskTracer(tracer)
	}
	return sys.Run(app), nil
}

// Observer bundles the optional observability sinks of a run: a Perfetto
// tracer, phase-resolved metrics, and the counter-sampling interval.
// Observability is strictly read-only — simulated results are
// byte-identical with and without it.
type Observer = obs.Observer

// Tracer streams a Chrome trace-event / Perfetto JSON trace.
type Tracer = obs.Tracer

// ObsMetrics holds the phase-resolved metric histograms of a run.
type ObsMetrics = obs.Metrics

// NewTracer returns a Tracer writing Perfetto JSON to w, converting core
// cycles at coreGHz (Config.CoreGHz) to trace microseconds. Call Close
// when the run finishes to terminate the JSON document and flush.
func NewTracer(w io.Writer, coreGHz float64) *Tracer { return obs.NewTracer(w, coreGHz) }

// StartDebugServer serves expvar and net/http/pprof on addr (e.g.
// ":6060") in the background, returning the bound address.
func StartDebugServer(addr string) (string, error) { return obs.StartDebugServer(addr) }

// RunAppObserved is RunApp with the observability subsystem installed:
// o.Trace receives the Perfetto trace, o.Metrics (when non-nil) ends up in
// Result.Stats.Obs, and tracer (when non-nil) receives per-task
// completion records exactly as in RunAppTraced.
func RunAppObserved(app App, d Design, cfg Config, o *Observer, tracer func(TaskTrace)) (*Result, error) {
	if d == DesignH {
		return nil, fmt.Errorf("abndp: design H is the host baseline; use RunHost")
	}
	applied := d.Apply(cfg)
	if err := applied.Validate(); err != nil {
		return nil, err
	}
	sys := ndp.NewSystem(cfg, d)
	if tracer != nil {
		sys.SetTaskTracer(tracer)
	}
	sys.SetObserver(o)
	return sys.Run(app), nil
}

// RunAppEngine is RunAppObserved with the simulation speed path selected
// (docs/PERF.md): engine "" or "serial" is the golden single-goroutine
// engine; "checkpoint" attaches a fresh checkpoint shard so repeated task
// hints reuse memoized placement cost vectors; "parallel" additionally runs
// workers background precompute goroutines warming the shard ahead of
// placement (workers <= 0 picks half of GOMAXPROCS, at least one). Results
// are byte-identical across engines — the checkpoint path changes how cost
// vectors are computed, never their values.
func RunAppEngine(app App, d Design, cfg Config, o *Observer, tracer func(TaskTrace), engine string, workers int) (*Result, error) {
	if d == DesignH {
		return nil, fmt.Errorf("abndp: design H is the host baseline; use RunHost")
	}
	applied := d.Apply(cfg)
	if err := applied.Validate(); err != nil {
		return nil, err
	}
	sys := ndp.NewSystem(cfg, d)
	switch engine {
	case "", "serial":
	case "checkpoint", "parallel":
		store := ckpt.NewStore(0)
		sys.SetCheckpoint(store.Shard(app.Name() + "|" + sys.Design.String() + "|" + sys.Cfg.PrefixKey()))
		if engine == "parallel" {
			if workers <= 0 {
				if workers = runtime.GOMAXPROCS(0) / 2; workers < 1 {
					workers = 1
				}
			}
			sys.SetParallelWorkers(workers)
		}
	default:
		return nil, fmt.Errorf("abndp: unknown engine %q (serial, checkpoint, parallel)", engine)
	}
	if tracer != nil {
		sys.SetTaskTracer(tracer)
	}
	sys.SetObserver(o)
	return sys.Run(app), nil
}

// NewSystem builds (but does not run) a simulated NDP machine for the
// given design — useful for inspecting the topology, camp mapping, and
// address space (see cmd/abndpinspect), or for driving App lifecycles
// manually via System.Run.
func NewSystem(cfg Config, d Design) (*System, error) {
	if d == DesignH {
		return nil, fmt.Errorf("abndp: design H is the host baseline; use RunHost")
	}
	applied := d.Apply(cfg)
	if err := applied.Validate(); err != nil {
		return nil, err
	}
	return ndp.NewSystem(cfg, d), nil
}

// RunHost estimates the named workload's execution on the host-only
// baseline H.
func RunHost(workload string, cfg Config, p Params) (HostResult, error) {
	app, err := apps.New(workload, p)
	if err != nil {
		return HostResult{}, err
	}
	fr := ndp.RunFunctional(cfg, app)
	return host.Run(host.Default(), fr), nil
}

// Characterize runs a workload functionally (no timing model), returning
// its instruction, access, and footprint profile.
func Characterize(workload string, cfg Config, p Params) (*ndp.FunctionalResult, error) {
	app, err := apps.New(workload, p)
	if err != nil {
		return nil, err
	}
	return ndp.RunFunctional(cfg, app), nil
}
