// Algorithm1 transcribes the paper's Algorithm 1 — the Page Rank task under
// the Swarm-style task model — against the public EnqueueTask API, with the
// convergence-based re-enqueue the paper describes: a vertex whose rank is
// still moving schedules itself again for the next timestamp, so the task
// count shrinks as the computation converges.
//
//	go run ./examples/algorithm1
package main

import (
	"fmt"
	"log"
	"math/rand"

	"abndp"
)

const (
	nVertices = 4096
	avgDegree = 8
	alpha     = 0.85 // damping factor
	epsilon   = 1e-7 // convergence threshold
	maxIters  = 30
)

func main() {
	// A small power-law-ish digraph: preferential attachment by degree.
	rng := rand.New(rand.NewSource(99))
	out := make([][]int32, nVertices)
	in := make([][]int32, nVertices)
	endpoints := []int32{0, 1}
	for v := 0; v < nVertices; v++ {
		for k := 0; k < avgDegree; k++ {
			u := endpoints[rng.Intn(len(endpoints))]
			out[v] = append(out[v], u)
			in[u] = append(in[u], int32(v))
			endpoints = append(endpoints, int32(v), u)
		}
	}

	curr := make([]float64, nVertices)
	next := make([]float64, nVertices)
	for i := range curr {
		curr[i] = 1 / float64(nVertices)
	}

	var vdata *abndp.Array
	var taskPageRank abndp.TaskFunc

	// The task hint: the vertex's own data plus its in-neighbors' data —
	// "the addresses of neighbor vertices of the processing vertex, which
	// can be easily obtained from the vertex neighbor list" (§3.1).
	hint := func(v int) abndp.Hint {
		lines := []abndp.Line{vdata.LineOf(v)}
		for _, n := range in[v] {
			lines = vdata.AppendLines(lines, int(n))
		}
		return abndp.Hint{Lines: lines}
	}

	// function TaskPageRank(ts, v) — Algorithm 1.
	taskPageRank = func(rt *abndp.Runtime, t *abndp.Task) {
		v := t.Elem
		var acc float64
		for _, n := range in[v] { // for n in v.neighbors do
			acc += curr[n] / float64(len(out[n])) // n.currPr / n.outDegree
		}
		next[v] = alpha*acc + (1-alpha)/float64(nVertices)
		rt.Charge(int64(10 + 6*len(in[v])))
		// Re-enqueue while not converged (the paper's |nextPr - currPr|
		// test, oriented so that moving vertices continue).
		if diff := next[v] - curr[v]; (diff > epsilon || diff < -epsilon) && t.TS+1 < maxIters {
			rt.EnqueueTask(taskPageRank, t.TS+1, hint(v), v)
		}
	}

	prog := abndp.NewProgram("algorithm1-pr", func(rt *abndp.Runtime) {
		vdata = rt.NewArray("pr.vdata", nVertices, 16)
		rt.AtBarrier(func(int64) {
			copy(curr, next)
		})
		for v := 0; v < nVertices; v++ {
			rt.EnqueueTask(taskPageRank, 0, hint(v), v)
		}
	})

	res, err := abndp.RunApp(prog, abndp.DesignO, abndp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	var sum, maxPr float64
	hottest := 0
	for v, p := range curr {
		sum += p
		if p > maxPr {
			maxPr, hottest = p, v
		}
	}
	fmt.Printf("Algorithm 1 Page Rank on %d vertices (ABNDP design O)\n", nVertices)
	fmt.Printf("  %d tasks over %d timestamps (%d would run without convergence)\n",
		res.Tasks, res.Steps, nVertices*maxIters)
	fmt.Printf("  %d cycles, %d inter-stack hops, cache hit rate %.1f%%\n",
		res.Makespan, res.InterHops, res.Stats.CacheHitRate()*100)
	// Note: the localized convergence test freezes settled vertices, so
	// the total mass drifts slightly from 1 — the tradeoff Algorithm 1
	// makes for dropping converged work.
	fmt.Printf("  rank mass %.4f, hottest vertex %d at %.5f\n", sum, hottest, maxPr)
}
