// Quickstart: simulate Page Rank on the default 128-unit NDP system under
// the baseline design B and under full ABNDP (design O), and compare
// performance, remote traffic, load balance, and energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"abndp"
)

func main() {
	cfg := abndp.DefaultConfig()
	params := abndp.Params{Scale: 13, Degree: 12, Iters: 3, Seed: 7}

	baseline, err := abndp.Run("pr", abndp.DesignB, cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := abndp.Run("pr", abndp.DesignO, cfg, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Page Rank, %d tasks over %d iterations on %d NDP units\n\n",
		baseline.Tasks, baseline.Steps, cfg.Units())

	show := func(r *abndp.Result) {
		fmt.Printf("design %-2s  %8d cycles  %9d inter-stack hops  "+
			"imbalance %.2fx  energy %7.1f uJ\n",
			r.Design, r.Makespan, r.InterHops,
			r.Stats.ImbalanceRatio(), r.Energy.Total()/1e6)
	}
	show(baseline)
	show(optimized)

	fmt.Printf("\nABNDP speedup: %.2fx, hops: %.2fx, energy: %.2fx\n",
		float64(baseline.Makespan)/float64(optimized.Makespan),
		float64(optimized.InterHops)/float64(baseline.InterHops),
		optimized.Energy.Total()/baseline.Energy.Total())

	if hr := optimized.Stats.CacheHitRate(); hr > 0 {
		fmt.Printf("Traveller Cache hit rate: %.1f%%\n", hr*100)
	}
}
