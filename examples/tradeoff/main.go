// Tradeoff reproduces the paper's motivating experiment (§2.3, Figure 2)
// interactively: it runs Page Rank under every Table 2 NDP design and
// prints the remote-access/load-balance tradeoff each one makes — showing
// why lowest-distance mapping and work stealing each fix one problem while
// worsening the other, and how ABNDP escapes the tradeoff.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"abndp"
)

func main() {
	cfg := abndp.DefaultConfig()
	params := abndp.Params{Scale: 13, Degree: 12, Iters: 3, Seed: 7}

	type row struct {
		design abndp.Design
		note   string
	}
	rows := []row{
		{abndp.DesignB, "co-locate with the main element"},
		{abndp.DesignSm, "lowest distance: fewest hops, worst hotspots"},
		{abndp.DesignSl, "work stealing: balanced, but hops blow up"},
		{abndp.DesignSh, "hybrid scheduling only"},
		{abndp.DesignC, "Traveller Cache only"},
		{abndp.DesignO, "full ABNDP co-design"},
	}

	var base *abndp.Result
	fmt.Printf("%-3s %-10s %-8s %-10s %s\n", "", "speedup", "hops", "imbalance", "note")
	for _, r := range rows {
		res, err := abndp.Run("pr", r.design, cfg, params)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-3s %-10.2f %-8.2f %-10.2f %s\n",
			res.Design,
			float64(base.Makespan)/float64(res.Makespan),
			float64(res.InterHops)/float64(base.InterHops),
			res.Stats.ImbalanceRatio(),
			r.note)
	}
	fmt.Println("\nspeedup and hops are relative to design B; imbalance is max/mean unit cycles")
}
