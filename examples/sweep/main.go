// Sweep explores the Traveller Cache design space on a single workload:
// camp count, cache capacity, and the skewed-vs-identical mapping —
// the §7.2 design-choice studies in miniature.
//
//	go run ./examples/sweep
//	go run ./examples/sweep -app spmv
package main

import (
	"flag"
	"fmt"
	"log"

	"abndp"
)

func main() {
	app := flag.String("app", "pr", "workload to sweep")
	flag.Parse()

	params := abndp.Params{Scale: 13, Degree: 12, Seed: 7}
	run := func(mut func(*abndp.Config)) *abndp.Result {
		cfg := abndp.DefaultConfig()
		mut(&cfg)
		res, err := abndp.Run(*app, abndp.DesignO, cfg, params)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("workload %s under full ABNDP (design O)\n", *app)

	fmt.Println("\ncamp count C (groups = C+1):")
	for _, c := range []int{1, 3, 7, 15} {
		res := run(func(cfg *abndp.Config) { cfg.CampCount = c })
		fmt.Printf("  C=%-2d  %8d cycles  %9d hops  cache hits %.1f%%\n",
			c, res.Makespan, res.InterHops, res.Stats.CacheHitRate()*100)
	}

	fmt.Println("\ncache capacity (fraction of local DRAM):")
	for _, r := range []int{512, 128, 64, 16} {
		res := run(func(cfg *abndp.Config) { cfg.CacheRatio = r })
		fmt.Printf("  1/%-4d %8d cycles  %9d hops  cache hits %.1f%%\n",
			r, res.Makespan, res.InterHops, res.Stats.CacheHitRate()*100)
	}

	fmt.Println("\ncamp unit-ID mapping:")
	for _, skewed := range []bool{false, true} {
		res := run(func(cfg *abndp.Config) { cfg.SkewedMapping = skewed })
		name := "identical"
		if skewed {
			name = "skewed"
		}
		fmt.Printf("  %-10s %8d cycles  %9d hops\n", name, res.Makespan, res.InterHops)
	}
}
