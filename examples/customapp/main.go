// Customapp shows how to port a new workload to the task-based execution
// model using only the public abndp API: a sparse histogram over a
// Zipf-skewed key stream. Each task processes one batch of keys, reads the
// bucket lines its keys touch (the hint), and increments app-side counts;
// bucket updates are bulk-applied at the barrier.
//
// The skewed keys make a few bucket lines hot — exactly the pattern where
// ABNDP's camp caching and hybrid scheduling beat the baseline.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"math/rand"

	"abndp"
)

const (
	buckets   = 1 << 14
	batches   = 1 << 13
	batchSize = 32
)

// histogram implements abndp.App.
type histogram struct {
	keys [][]int32 // one slice per batch task

	barr   *abndp.Array // bucket counters, 8 B each
	qarr   *abndp.Array // per-batch descriptors (main elements), 16 B
	counts []int64
	staged []int64 // per-timestamp increments, bulk-applied
}

func (h *histogram) Name() string { return "histogram" }

func (h *histogram) Setup(sys *abndp.System) {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.4, 1, buckets-1)
	h.keys = make([][]int32, batches)
	for b := range h.keys {
		ks := make([]int32, batchSize)
		for i := range ks {
			ks[i] = int32(zipf.Uint64())
		}
		h.keys[b] = ks
	}
	h.barr = sys.Space.NewArray("hist.buckets", buckets, 8, abndp.Interleave)
	h.qarr = sys.Space.NewArray("hist.batches", batches, 16, abndp.Interleave)
	h.counts = make([]int64, buckets)
	h.staged = make([]int64, buckets)
}

func (h *histogram) hint(batch int) abndp.Hint {
	lines := []abndp.Line{h.qarr.LineOf(batch)}
	for _, k := range h.keys[batch] {
		lines = h.barr.AppendLines(lines, int(k))
	}
	return abndp.Hint{Lines: lines}
}

func (h *histogram) InitialTasks(emit func(*abndp.Task)) {
	for b := 0; b < batches; b++ {
		emit(&abndp.Task{Elem: b, Hint: h.hint(b)})
	}
}

func (h *histogram) Execute(t *abndp.Task, ctx *abndp.ExecCtx) int64 {
	for _, k := range h.keys[t.Elem] {
		h.staged[k]++
	}
	return 4 * batchSize
}

func (h *histogram) EndTimestamp(int64) {
	for i, v := range h.staged {
		h.counts[i] += v
		h.staged[i] = 0
	}
}

func main() {
	cfg := abndp.DefaultConfig()

	appB := &histogram{}
	resB, err := abndp.RunApp(appB, abndp.DesignB, cfg)
	if err != nil {
		log.Fatal(err)
	}
	appO := &histogram{}
	resO, err := abndp.RunApp(appO, abndp.DesignO, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: both runs must produce the same histogram.
	var total int64
	for i := range appB.counts {
		if appB.counts[i] != appO.counts[i] {
			log.Fatalf("bucket %d differs across designs", i)
		}
		total += appB.counts[i]
	}

	fmt.Printf("histogram of %d keys into %d buckets (hottest bucket: %d hits)\n",
		total, buckets, appB.counts[0])
	fmt.Printf("design B: %8d cycles, %8d hops, imbalance %.2fx\n",
		resB.Makespan, resB.InterHops, resB.Stats.ImbalanceRatio())
	fmt.Printf("design O: %8d cycles, %8d hops, imbalance %.2fx  (%.2fx speedup)\n",
		resO.Makespan, resO.InterHops, resO.Stats.ImbalanceRatio(),
		float64(resB.Makespan)/float64(resO.Makespan))
}
