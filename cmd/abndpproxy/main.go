// Command abndpproxy is the serving-fleet coordinator: a reverse proxy
// that fronts N abndpserve backends behind the same HTTP/JSON API one
// backend exposes. Submissions are routed by consistent hash on the
// canonical request key (so dedup works fleet-wide), overridden by
// per-backend health probes, a circuit breaker, and observed load;
// mid-flight failures re-dispatch to the next healthy backend with
// jittered backoff, and re-dispatched results are cross-checked against
// the dead owner's result_hash.
//
// Completed results are additionally memoized in a fleet-wide shared
// result store: after a failover (or a resubmission whose terminal job
// aged out), the proxy answers from the store — hash-verified — and
// replicates the memo to a live backend via POST /v1/runs/{id}/adopt
// instead of recomputing. When a probe observes a backend draining, the
// proxy proactively migrates that backend's still-queued jobs to the
// rest of the fleet.
//
// Usage:
//
//	abndpproxy -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	abndpproxy -addr :8080 -backends ... -attempts 4
//	abndpproxy -hedge 2s                  # hedge long ?wait polls
//	abndpproxy -store-size 4096           # shared result store capacity
//	abndpproxy -migrate=false             # disable drain-time migration
//	abndpproxy -log text                  # human-readable logs
//
// Quick start (docs/SERVING.md, "Serving fleets"):
//
//	abndpserve -quick -id b1 -addr :8081 &
//	abndpserve -quick -id b2 -addr :8082 &
//	abndpproxy -backends http://127.0.0.1:8081,http://127.0.0.1:8082 &
//	curl -s -X POST localhost:8080/v1/runs -d '{"app":"pr","design":"O"}'
//	curl -s 'localhost:8080/v1/runs/job-000001?wait=60s'
//	curl -s localhost:8080/healthz        # fleet + per-backend health
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"abndp/internal/fleet"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		backends = flag.String("backends", "", "comma-separated abndpserve base URLs (required)")
		attempts = flag.Int("attempts", 3, "full-fleet dispatch rounds before rejecting a submission")
		attemptT = flag.Duration("attempttimeout", 15*time.Second, "per-backend submit attempt deadline")
		probeIv  = flag.Duration("probe", 500*time.Millisecond, "readiness-probe interval")
		failThr  = flag.Int("failthreshold", 3, "consecutive failures that open a backend's circuit breaker")
		halfOpen = flag.Duration("halfopen", 3*time.Second, "open-breaker cool-down before the half-open recovery trial")
		hedge    = flag.Duration("hedge", 0, "race a long ?wait poll against a second completed-result holder after this delay (0 disables)")
		storeSz  = flag.Int("store-size", 1024, "shared result store capacity in completed results (0 disables)")
		jobCap   = flag.Int("job-cap", 1024, "terminal fleet jobs retained before LRU eviction (0 disables the cap)")
		migrate  = flag.Bool("migrate", true, "re-dispatch a draining backend's queued jobs to the rest of the fleet")
		logFmt   = flag.String("log", "json", "structured log format on stderr: json or text")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFmt, *logLevel)
	if err != nil {
		fatal(err)
	}
	var urls []string
	for _, raw := range strings.Split(*backends, ",") {
		if raw = strings.TrimSpace(raw); raw != "" {
			urls = append(urls, raw)
		}
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("at least one -backends URL is required"))
	}

	// Flag 0 means "off"; fleet.Config treats 0 as "default", so map it
	// to the explicit disable value.
	storeSize, jobs := *storeSz, *jobCap
	if storeSize <= 0 {
		storeSize = -1
	}
	if jobs <= 0 {
		jobs = -1
	}
	coord, err := fleet.New(fleet.Config{
		Backends:         urls,
		ProbeInterval:    *probeIv,
		FailThreshold:    *failThr,
		HalfOpenAfter:    *halfOpen,
		MaxAttempts:      *attempts,
		AttemptTimeout:   *attemptT,
		HedgeDelay:       *hedge,
		StoreSize:        storeSize,
		JobCap:           jobs,
		DisableMigration: !*migrate,
		Logger:           logger,
	})
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	logger.Info("proxying", "addr", ln.Addr().String(), "backends", urls,
		"attempts", *attempts, "hedge", hedge.String(),
		"store_size", storeSize, "job_cap", jobs, "migrate", *migrate)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(err)
	}
	stop()

	// The proxy holds no durable job state — in-flight polls just need the
	// listener to finish out. Backends drain themselves on their own
	// SIGTERM.
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(sctx)
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	logger.Info("stopped")
}

// buildLogger constructs the stderr slog logger from the -log/-log-level
// flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log %q (json or text)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abndpproxy:", err)
	os.Exit(1)
}
