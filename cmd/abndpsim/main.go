// Command abndpsim runs one workload on one simulated NDP design and
// prints its performance, traffic, and energy summary.
//
// Usage:
//
//	abndpsim -app pr -design O
//	abndpsim -app spmv -design Sl -scale 13 -degree 16
//	abndpsim -app pr -design O -mesh 8 -campcount 7 -ratio 32
//	abndpsim -app pr -design O -faults "slow:9:4;kill:70@25000" -fault-seed 7
//	abndpsim -app pr -design O -perfetto trace.json -metrics phases.csv
//	abndpsim -app pr -design O -pprof :6060 -cpuprofile cpu.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"abndp"
)

func main() {
	var (
		appName  = flag.String("app", "pr", "workload: pr bfs sssp astar gcn kmeans knn spmv")
		design   = flag.String("design", "O", "design: H B Sm Sl Sh C O")
		scale    = flag.Int("scale", 0, "log2 element count (0 = workload default)")
		degree   = flag.Int("degree", 0, "average degree / nnz per row (0 = default)")
		iters    = flag.Int("iters", 0, "iterations (0 = default)")
		seed     = flag.Int64("seed", 42, "input generator seed")
		mesh     = flag.Int("mesh", 4, "stack mesh side (2, 4, or 8)")
		ratio    = flag.Int("ratio", 64, "Traveller Cache size = 1/ratio of local DRAM")
		camps    = flag.Int("campcount", 3, "camp locations per line (C)")
		ways     = flag.Int("ways", 4, "Traveller Cache associativity")
		bypass   = flag.Float64("bypass", 0.4, "cache insertion bypass probability")
		alpha    = flag.Float64("alpha", -1, "hybrid weight B = alpha*Dinter (-1 = d/2)")
		exchange = flag.Int64("exchange", 0, "workload exchange interval, cycles (0 = default)")
		identity = flag.Bool("identical-mapping", false, "disable the skewed camp mapping")
		lru      = flag.Bool("lru", false, "use LRU instead of random cache replacement")
		probeAll = flag.Bool("probe-all", false, "probe every camp on a miss instead of nearest only")
		torus    = flag.Bool("torus", false, "use a torus instead of a mesh inter-stack network")
		perfect  = flag.Bool("perfect-hints", false, "supply exact workload hints to the scheduler")
		checkRun = flag.Bool("check", false, "audit the run: runtime invariants fail fast, then the metamorphic battery (exit 1 on violations)")
		hashOut  = flag.Bool("hash", false, "also print result_hash=<fnv1a %016x> (compare against abndpserve's result_hash)")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. 'dram:0.001;slow:9:4;kill:70@25000;link:5:e@12000' (see docs/FAULTS.md)")
		fseed    = flag.Int64("fault-seed", 0, "decorrelate the DRAM-error stream (overrides a seed: clause in -faults)")
		trace    = flag.String("trace", "", "write a JSONL per-task completion trace to this file")
		graphIn  = flag.String("graph", "", "load the input graph from a file (SNAP edge list or .mtx)")
		perfetto = flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON trace to this file")
		metricsF = flag.String("metrics", "", "write phase-resolved observability metrics as CSV to this file")
		sample   = flag.Int64("sample-interval", 1024, "counter-sampling interval in cycles for -perfetto")
		engine   = flag.String("engine", "serial", "simulation engine: 'serial' (golden default), 'checkpoint' (placement-vector memoization), or 'parallel' (plus background precompute workers); results are byte-identical (docs/PERF.md)")
		engJobs  = flag.Int("enginejobs", 0, "precompute workers for -engine parallel (0 = GOMAXPROCS/2)")
		pprofSrv = flag.String("pprof", "", "serve pprof+expvar+Prometheus /metrics debug HTTP on this address (e.g. :6060)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	)
	flag.Parse()

	if *pprofSrv != "" {
		addr, err := abndp.StartDebugServer(*pprofSrv)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "abndpsim: debug server at http://%s/debug/pprof/ (metrics at /metrics)\n", addr)
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := abndp.DefaultConfig()
	cfg.MeshX, cfg.MeshY = *mesh, *mesh
	cfg.CacheRatio = *ratio
	cfg.CampCount = *camps
	cfg.CacheWays = *ways
	cfg.BypassProb = *bypass
	cfg.HybridAlpha = *alpha
	if *exchange > 0 {
		cfg.ExchangeInterval = *exchange
	}
	cfg.SkewedMapping = !*identity
	if *lru {
		cfg.Replacement = abndp.ReplaceLRU
	}
	cfg.ProbeAllCamps = *probeAll
	cfg.Torus = *torus
	if *faults != "" {
		plan, err := abndp.ParseFaults(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
	}
	if *fseed != 0 {
		cfg.Faults.Seed = *fseed
	}

	p := abndp.Params{Scale: *scale, Degree: *degree, Iters: *iters, Seed: *seed,
		PerfectHints: *perfect, GraphPath: *graphIn}

	d, err := abndp.ParseDesign(*design)
	if err != nil {
		fatal(err)
	}

	if d == abndp.DesignH {
		r, err := abndp.RunHost(*appName, cfg, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("app=%s design=H time=%.3f ms memory_bound=%v traffic=%.2f GB\n",
			*appName, r.Seconds*1e3, r.MemoryBound, r.TrafficGB)
		return
	}

	if *checkRun {
		// The audit battery reruns the workload to compare result hashes;
		// observability outputs of a multiplexed run would be misleading.
		if *perfetto != "" || *metricsF != "" || *trace != "" {
			fatal(fmt.Errorf("-check cannot be combined with -perfetto, -metrics, or -trace"))
		}
		res, rep, err := abndp.AuditRun(*appName, d, cfg, p, true)
		if err != nil {
			fatal(err)
		}
		if res != nil {
			printSummary(res, cfg)
			if *hashOut {
				fmt.Printf("result_hash=%016x\n", abndp.ResultHash(res))
			}
		}
		fmt.Println(rep.String())
		if !rep.Ok() {
			os.Exit(1)
		}
		return
	}

	app, err := abndp.NewApp(*appName, p)
	if err != nil {
		fatal(err)
	}
	// The JSONL task trace is buffered and flushed explicitly after the
	// run: encode errors are recorded (not fatal'd mid-simulation, which
	// would skip the deferred cleanup) and reported once at close.
	var tracer func(abndp.TaskTrace)
	var closeTrace func() error
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		enc := json.NewEncoder(bw)
		var traceErr error
		tracer = func(t abndp.TaskTrace) {
			if traceErr == nil {
				traceErr = enc.Encode(t)
			}
		}
		closeTrace = func() error {
			if err := bw.Flush(); err != nil && traceErr == nil {
				traceErr = err
			}
			if err := f.Close(); err != nil && traceErr == nil {
				traceErr = err
			}
			return traceErr
		}
	}

	var o *abndp.Observer
	var perfF *os.File
	var perfT *abndp.Tracer
	if *perfetto != "" || *metricsF != "" {
		o = &abndp.Observer{}
		if *perfetto != "" {
			var err error
			if perfF, err = os.Create(*perfetto); err != nil {
				fatal(err)
			}
			perfT = abndp.NewTracer(perfF, cfg.CoreGHz)
			o.Trace = perfT
			o.SampleInterval = *sample
		}
		if *metricsF != "" {
			o.Metrics = &abndp.ObsMetrics{}
		}
	}

	simStart := time.Now()
	res, err := abndp.RunAppEngine(app, d, cfg, o, tracer, *engine, *engJobs)
	if err != nil {
		fatal(err)
	}
	simWall := time.Since(simStart).Seconds()
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *trace, err))
		}
	}
	if perfT != nil {
		if err := perfT.Close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *perfetto, err))
		}
		if err := perfF.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "abndpsim: wrote %d trace events to %s (open in https://ui.perfetto.dev)\n",
			perfT.Events(), *perfetto)
	}
	if *metricsF != "" {
		f, err := os.Create(*metricsF)
		if err != nil {
			fatal(err)
		}
		if err := res.Stats.Obs.WriteCSV(f); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *metricsF, err))
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	printSummary(res, cfg)
	if simWall > 0 {
		fmt.Printf("  engine        %s: %d events in %.2fs host time (%.3g events/sec)\n",
			*engine, res.Events, simWall, float64(res.Events)/simWall)
	}
	if *hashOut {
		fmt.Printf("result_hash=%016x\n", abndp.ResultHash(res))
	}
}

// printSummary renders the end-of-run performance, traffic, and energy
// report shared by plain and -check runs.
func printSummary(res *abndp.Result, cfg abndp.Config) {
	fmt.Printf("app=%s design=%s\n", res.App, res.Design)
	if res.Unrecoverable != "" {
		fmt.Printf("  UNRECOVERABLE %s (at cycle %d)\n", res.Unrecoverable, res.Makespan)
	}
	fmt.Printf("  cycles        %d (%.3f ms)\n", res.Makespan, res.Seconds*1e3)
	fmt.Printf("  tasks         %d over %d timestamps\n", res.Tasks, res.Steps)
	fmt.Printf("  inter hops    %d\n", res.InterHops)
	fmt.Printf("  imbalance     %.2fx (max/mean unit cycles)\n", res.Stats.ImbalanceRatio())
	if hr := res.Stats.CacheHitRate(); hr > 0 {
		fmt.Printf("  cache hits    %.1f%%\n", hr*100)
	}
	var reads, writes, queue, maxQueue int64
	var l1h, l1m, pfh int64
	for i := range res.Stats.Units {
		u := &res.Stats.Units[i]
		reads += u.DRAMReads
		writes += u.DRAMWrites
		queue += u.DRAMQueueCycles
		if u.DRAMQueueCycles > maxQueue {
			maxQueue = u.DRAMQueueCycles
		}
		l1h += u.L1Hits
		l1m += u.L1Misses
		pfh += u.PFHits
	}
	fmt.Printf("  dram          %d reads, %d writes, queue total %d cycles (max unit %d)\n",
		reads, writes, queue, maxQueue)
	type hot struct{ u, acc, q int64 }
	var hots []hot
	for i := range res.Stats.Units {
		u := &res.Stats.Units[i]
		hots = append(hots, hot{int64(i), u.DRAMReads + u.DRAMWrites, u.DRAMQueueCycles})
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].q > hots[j].q })
	for _, h := range hots[:3] {
		fmt.Printf("  hot dram unit %d: %d accesses, %d queue cycles\n", h.u, h.acc, h.q)
	}
	fmt.Printf("  l1            %.1f%% hit; pf reuse %d\n",
		100*float64(l1h)/float64(l1h+l1m+1), pfh)
	var stall int64
	for i := range res.Stats.Units {
		stall += res.Stats.Units[i].StallCycles
	}
	fmt.Printf("  stalls        %d total (%.0f per task)\n", stall, float64(stall)/float64(res.Tasks))
	e := res.Energy
	fmt.Printf("  energy        %.1f uJ (core+SRAM %.1f, DRAM %.1f, interconnect %.1f, static %.1f)\n",
		e.Total()/1e6, e.CoreSRAM/1e6, e.DRAM/1e6, e.Interconnect/1e6, e.Static/1e6)
	if f := res.Stats.Faults; !cfg.Faults.Empty() || f.Any() {
		fmt.Printf("  faults        %d dram retries (%d uncorrected), %d reexecuted, %d redistributed, %d rerouted (+%d hops), %d dead units, %d dead links\n",
			f.DRAMRetries, f.DRAMUncorrected, f.TasksReExecuted, f.TasksRedistributed,
			f.ReroutedMsgs, f.ReroutedExtraHops, f.DeadUnits, f.DeadLinks)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abndpsim:", err)
	os.Exit(1)
}
