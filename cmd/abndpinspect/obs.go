package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"abndp"
)

// traceSummary reads a JSONL per-task trace (abndpsim -trace) and prints a
// per-unit execution summary table.
func traceSummary(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	type unitAgg struct {
		tasks, stolen, forwarded int64
		dur, stall               int64
		lines                    int64
	}
	agg := map[abndp.UnitID]*unitAgg{}
	var total unitAgg
	var maxTS, lastCycle int64

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var t abndp.TaskTrace
		if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
			fatal(fmt.Errorf("%s line %d: %w", path, n+1, err))
		}
		n++
		a := agg[t.Unit]
		if a == nil {
			a = &unitAgg{}
			agg[t.Unit] = a
		}
		for _, x := range []*unitAgg{a, &total} {
			x.tasks++
			x.dur += t.Dur
			x.stall += t.Stall
			x.lines += int64(t.Lines)
			if t.Stolen {
				x.stolen++
			}
			if t.Origin != t.Unit {
				x.forwarded++
			}
		}
		if t.TS > maxTS {
			maxTS = t.TS
		}
		if t.Cycle > lastCycle {
			lastCycle = t.Cycle
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if n == 0 {
		fatal(fmt.Errorf("%s: no task records", path))
	}

	units := make([]abndp.UnitID, 0, len(agg))
	for u := range agg {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })

	fmt.Printf("%s: %d tasks over %d timestamps, last completion at cycle %d\n\n",
		path, n, maxTS+1, lastCycle)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "unit\ttasks\tin\tstolen\tbusy cyc\tmean dur\tstall cyc\tstall/task\t")
	for _, u := range units {
		a := agg[u]
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f\t%d\t%.1f\t\n",
			u, a.tasks, a.forwarded, a.stolen, a.dur,
			float64(a.dur)/float64(a.tasks), a.stall,
			float64(a.stall)/float64(a.tasks))
	}
	fmt.Fprintf(tw, "all\t%d\t%d\t%d\t%d\t%.1f\t%d\t%.1f\t\n",
		total.tasks, total.forwarded, total.stolen, total.dur,
		float64(total.dur)/float64(total.tasks), total.stall,
		float64(total.stall)/float64(total.tasks))
	tw.Flush()
}

// queuesSummary reads a Perfetto trace (abndpsim -perfetto) and summarizes
// every counter track: sample count, min, mean, max, and final value.
func queuesSummary(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Args struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	procs := map[int]string{}
	type track struct {
		pid           int
		name          string
		n             int64
		min, max, sum float64
		last, lastTS  float64
	}
	tracks := map[[2]string]*track{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs[ev.Pid] = ev.Args.Name
			}
		case "C":
			key := [2]string{fmt.Sprint(ev.Pid), ev.Name}
			tr := tracks[key]
			if tr == nil {
				tr = &track{pid: ev.Pid, name: ev.Name, min: ev.Args.Value, max: ev.Args.Value}
				tracks[key] = tr
			}
			v := ev.Args.Value
			tr.n++
			tr.sum += v
			if v < tr.min {
				tr.min = v
			}
			if v > tr.max {
				tr.max = v
			}
			if ev.TS >= tr.lastTS {
				tr.lastTS, tr.last = ev.TS, v
			}
		}
	}
	if len(tracks) == 0 {
		fatal(fmt.Errorf("%s: no counter tracks (was the trace recorded with -perfetto?)", path))
	}

	list := make([]*track, 0, len(tracks))
	for _, tr := range tracks {
		list = append(list, tr)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].pid != list[j].pid {
			return list[i].pid < list[j].pid
		}
		return list[i].name < list[j].name
	})

	fmt.Printf("%s: %d counter tracks\n\n", path, len(list))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "process\tcounter\tsamples\tmin\tmean\tmax\tlast\t")
	for _, tr := range list {
		proc := procs[tr.pid]
		if proc == "" {
			proc = fmt.Sprintf("pid %d", tr.pid)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.1f\t%.0f\t%.0f\t\n",
			proc, tr.name, tr.n, tr.min, tr.sum/float64(tr.n), tr.max, tr.last)
	}
	tw.Flush()
}
