// Command abndpinspect visualizes the simulated NDP machine: the stack
// mesh and camp-group layout, camp locations of individual cachelines, the
// inter-stack hop matrix, and per-unit load/traffic heat maps of a run.
//
// Usage:
//
//	abndpinspect layout                     # stacks, groups, unit ranges
//	abndpinspect camps -addr 0x12345640     # camp locations of one line
//	abndpinspect hops                       # stack hop-distance matrix
//	abndpinspect heat -app pr -design O     # per-unit active-cycle heat map
//	abndpinspect timeline -app pr           # core utilization over time
//	abndpinspect trace -in tasks.jsonl      # per-unit summary of a -trace recording
//	abndpinspect queues -in trace.json      # counter tracks of a -perfetto recording
//	abndpinspect faults -spec "kill:70@25000;slow:9:4"  # validate + print a fault plan
//	abndpinspect checkpoints -app pr -scale 10          # checkpoint-store shards of a knob sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abndp"
	"abndp/internal/ckpt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		mesh   = fs.Int("mesh", 4, "stack mesh side")
		camps  = fs.Int("campcount", 3, "camp locations per line (C)")
		torus  = fs.Bool("torus", false, "torus inter-stack network")
		addr   = fs.String("addr", "0x1000", "physical address (camps command)")
		appN   = fs.String("app", "pr", "workload (heat command)")
		design = fs.String("design", "O", "design (heat command)")
		scale  = fs.Int("scale", 0, "workload scale (heat command)")
		metric = fs.String("metric", "cycles", "heat metric: cycles, tasks, dram, hops")
		in     = fs.String("in", "", "recorded trace file (trace: JSONL from -trace; queues: JSON from -perfetto)")
		spec   = fs.String("spec", "", "fault spec to validate and print (faults command)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	cfg := abndp.DefaultConfig()
	cfg.MeshX, cfg.MeshY = *mesh, *mesh
	cfg.CampCount = *camps
	cfg.Torus = *torus

	switch cmd {
	case "layout":
		layout(cfg)
	case "camps":
		showCamps(cfg, *addr)
	case "hops":
		hops(cfg)
	case "heat":
		heat(cfg, *appN, *design, *scale, *metric)
	case "timeline":
		timeline(cfg, *appN, *scale)
	case "trace":
		if *in == "" {
			fatal(fmt.Errorf("trace: -in <tasks.jsonl> required (record with abndpsim -trace)"))
		}
		traceSummary(*in)
	case "queues":
		if *in == "" {
			fatal(fmt.Errorf("queues: -in <trace.json> required (record with abndpsim -perfetto)"))
		}
		queuesSummary(*in)
	case "faults":
		if *spec == "" {
			fatal(fmt.Errorf("faults: -spec <fault spec> required (see docs/FAULTS.md)"))
		}
		showFaults(cfg, *spec)
	case "checkpoints":
		checkpoints(cfg, *appN, *design, *scale)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: abndpinspect {layout|camps|hops|heat|timeline|trace|queues|faults|checkpoints} [flags]")
	os.Exit(2)
}

// checkpoints demonstrates the checkpoint/delta re-simulation store: it
// runs a short HybridAlpha knob sweep with a store attached — every point
// shares one prefix shard, so later points reuse the first point's
// placement cost vectors — then lists the store's shards and counters
// (the same numbers abndpbench reports in the metrics JSON; docs/PERF.md).
func checkpoints(cfg abndp.Config, appName, designName string, scale int) {
	d, err := abndp.ParseDesign(designName)
	if err != nil {
		fatal(err)
	}
	store := ckpt.NewStore(0)
	alphas := []float64{0, 2, 4}
	for _, a := range alphas {
		c := cfg
		c.HybridAlpha = a
		sys, err := abndp.NewSystem(c, d)
		if err != nil {
			fatal(err)
		}
		sys.SetCheckpoint(store.Shard(appName + "|" + sys.Design.String() + "|" + sys.Cfg.PrefixKey()))
		app, err := abndp.NewApp(appName, abndp.Params{Scale: scale})
		if err != nil {
			fatal(err)
		}
		sys.Run(app)
	}
	st := store.Stats()
	fmt.Printf("checkpoint store after a %d-point HybridAlpha sweep of %s on design %s:\n",
		len(alphas), appName, d)
	fmt.Printf("  %d shard(s), %d entries, %.1f KiB of %.0f MiB cap\n",
		st.Shards, st.Entries, float64(st.Bytes)/(1<<10), float64(st.CapBytes)/(1<<20))
	fmt.Printf("  %d hits, %d misses, %d inserts, %d rejects, %d evictions\n\n",
		st.Hits, st.Misses, st.Inserts, st.Rejects, st.Evictions)
	for _, e := range store.Entries() {
		fmt.Printf("  shard %s\n", e.Key)
		fmt.Printf("    %d cost vectors, %.1f KiB, %d hits / %d misses (last use #%d)\n",
			e.Entries, float64(e.Bytes)/(1<<10), e.Hits, e.Misses, e.LastUse)
	}
	if st.Hits == 0 {
		fmt.Println("\n  note: no hits — this design's scheduler does not consult cost vectors")
	}
}

// showFaults parses and validates a fault spec against the configured
// machine and prints the fully resolved plan: every clause expanded, the
// effective retry budgets, and the canonical cache key the plan hashes to.
func showFaults(cfg abndp.Config, spec string) {
	plan, err := abndp.ParseFaults(spec)
	if err != nil {
		fatal(err)
	}
	check := cfg
	check.Faults = plan
	if err := check.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s\n", plan.String())
	fmt.Printf("  machine        %dx%d stacks, %d units\n", cfg.MeshX, cfg.MeshY, cfg.Units())
	fmt.Printf("  dram errors    p=%g per access, <=%d ECC retries\n",
		plan.DRAMErrProb, plan.EffectiveDRAMRetryMax())
	fmt.Printf("  task retries   <=%d re-executions before unrecoverable\n", plan.EffectiveTaskRetryMax())
	fmt.Printf("  seed           %d\n", plan.Seed)
	for _, s := range plan.Stragglers {
		window := "always"
		if s.From > 0 || s.Until > 0 {
			window = fmt.Sprintf("cycles [%d, %d)", s.From, s.Until)
			if s.Until == 0 {
				window = fmt.Sprintf("cycles [%d, inf)", s.From)
			}
		}
		fmt.Printf("  straggler      unit %d: core %gx, channel %gx, %s\n",
			s.Unit, s.CoreFactor, s.ChanFactor, window)
	}
	for _, k := range plan.UnitKills {
		fmt.Printf("  unit kill      unit %d at cycle %d\n", k.Unit, k.Cycle)
	}
	for _, k := range plan.LinkKills {
		fmt.Printf("  link kill      stack %d dir %s at cycle %d\n", k.Stack, dirName(k.Dir), k.Cycle)
	}
	fmt.Printf("  cache key      %s\n", plan.Key())
}

// dirName names a mesh link direction (the fault package's layout).
func dirName(d int) string {
	switch d {
	case 0:
		return "+x (east)"
	case 1:
		return "-x (west)"
	case 2:
		return "+y (south)"
	case 3:
		return "-y (north)"
	}
	return fmt.Sprintf("dir %d", d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abndpinspect:", err)
	os.Exit(1)
}

func newSystem(cfg abndp.Config) *abndp.System {
	sys, err := abndp.NewSystem(cfg, abndp.DesignO)
	if err != nil {
		fatal(err)
	}
	return sys
}

// layout prints the stack mesh with each stack's ID, group, and unit range.
func layout(cfg abndp.Config) {
	sys := newSystem(cfg)
	topo := sys.Topo
	fmt.Printf("%dx%d stacks, %d units/stack, %d units total, %d groups (C=%d), diameter %d\n\n",
		cfg.MeshX, cfg.MeshY, cfg.UnitsPerStack, topo.Units(), topo.Groups(),
		cfg.CampCount, topo.Diameter())
	// Invert coord -> stack.
	at := make(map[[2]int]int)
	for s := 0; s < topo.Stacks(); s++ {
		x, y := topo.Coord(abndp.StackID(s))
		at[[2]int{x, y}] = s
	}
	for y := 0; y < cfg.MeshY; y++ {
		for x := 0; x < cfg.MeshX; x++ {
			s := at[[2]int{x, y}]
			lo := s * cfg.UnitsPerStack
			hi := lo + cfg.UnitsPerStack - 1
			g := topo.GroupOf(abndp.UnitID(lo))
			fmt.Printf("[s%02d g%d u%03d-%03d] ", s, g, lo, hi)
		}
		fmt.Println()
	}
}

// showCamps prints the home and camp locations of one cacheline.
func showCamps(cfg abndp.Config, addrStr string) {
	sys := newSystem(cfg)
	a, err := strconv.ParseUint(addrStr, 0, 64)
	if err != nil {
		fatal(fmt.Errorf("bad address %q: %w", addrStr, err))
	}
	line := abndp.Line(a >> 6)
	locs := sys.Camps.Locations(line)
	fmt.Printf("address %#x -> line %#x\n", a, uint64(line))
	for i, u := range locs {
		role := fmt.Sprintf("camp (group %d)", sys.Topo.GroupOf(u))
		if i == 0 {
			role = fmt.Sprintf("HOME (group %d)", sys.Topo.GroupOf(u))
		}
		fmt.Printf("  unit %3d  stack %2d  %s\n", u, sys.Topo.StackOf(u), role)
	}
}

// hops prints the stack-to-stack hop matrix.
func hops(cfg abndp.Config) {
	sys := newSystem(cfg)
	topo := sys.Topo
	fmt.Printf("     ")
	for b := 0; b < topo.Stacks(); b++ {
		fmt.Printf("%3d", b)
	}
	fmt.Println()
	for a := 0; a < topo.Stacks(); a++ {
		fmt.Printf("s%02d  ", a)
		for b := 0; b < topo.Stacks(); b++ {
			fmt.Printf("%3d", topo.StackHops(abndp.StackID(a), abndp.StackID(b)))
		}
		fmt.Println()
	}
}

// heat runs a workload and prints a per-unit heat map of the chosen metric,
// arranged by stack position (units of a stack on one row segment).
func heat(cfg abndp.Config, appName, designName string, scale int, metric string) {
	d, err := abndp.ParseDesign(designName)
	if err != nil {
		fatal(err)
	}
	res, err := abndp.Run(appName, d, cfg, abndp.Params{Scale: scale})
	if err != nil {
		fatal(err)
	}
	vals := make([]float64, len(res.Stats.Units))
	for i := range res.Stats.Units {
		u := &res.Stats.Units[i]
		switch metric {
		case "cycles":
			for _, c := range u.ActiveCycles {
				vals[i] += float64(c)
			}
		case "tasks":
			vals[i] = float64(u.TasksRun)
		case "dram":
			vals[i] = float64(u.DRAMReads + u.DRAMWrites)
		case "hops":
			vals[i] = float64(u.InterHops)
		default:
			fatal(fmt.Errorf("unknown metric %q", metric))
		}
	}
	var maxV float64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	fmt.Printf("app=%s design=%s metric=%s (each cell one unit; . < - < = < # < @ of max %.0f)\n\n",
		appName, d, metric, maxV)
	shades := []byte{'.', '-', '=', '#', '@'}
	sys := newSystem(cfg)
	at := make(map[[2]int]int)
	for s := 0; s < sys.Topo.Stacks(); s++ {
		x, y := sys.Topo.Coord(abndp.StackID(s))
		at[[2]int{x, y}] = s
	}
	for y := 0; y < cfg.MeshY; y++ {
		for x := 0; x < cfg.MeshX; x++ {
			s := at[[2]int{x, y}]
			for k := 0; k < cfg.UnitsPerStack; k++ {
				v := vals[s*cfg.UnitsPerStack+k]
				idx := 0
				if maxV > 0 {
					idx = int(v / maxV * float64(len(shades)))
					if idx >= len(shades) {
						idx = len(shades) - 1
					}
				}
				fmt.Printf("%c", shades[idx])
			}
			fmt.Printf("  ")
		}
		fmt.Println()
	}
	fmt.Printf("\nimbalance %.2fx, makespan %d cycles, %d hops\n",
		res.Stats.ImbalanceRatio(), res.Makespan, res.InterHops)
}

// timeline runs a workload under every design and prints core utilization
// over time as one sparkline row per design, exposing the tail/hotspot
// behavior each scheduler produces.
func timeline(cfg abndp.Config, appName string, scale int) {
	shades := []rune(" .:-=+*#%@")
	maxCores := cfg.Units() * cfg.CoresPerUnit
	fmt.Printf("app=%s: busy cores over time (%d cores; each column ~1/80 of that design's run)\n\n", appName, maxCores)
	for _, d := range abndp.NDPDesigns {
		app, err := abndp.NewApp(appName, abndp.Params{Scale: scale})
		if err != nil {
			fatal(err)
		}
		sys, err := abndp.NewSystem(cfg, d)
		if err != nil {
			fatal(err)
		}
		// Pick the interval so every run yields ~80 columns.
		probe, err := abndp.Run(appName, d, cfg, abndp.Params{Scale: scale})
		if err != nil {
			fatal(err)
		}
		interval := probe.Makespan / 80
		if interval < 1 {
			interval = 1
		}
		sys.SetUtilizationSampling(interval)
		res := sys.Run(app)
		var row strings.Builder
		for _, b := range res.Stats.Timeline {
			idx := b * (len(shades) - 1) / maxCores
			row.WriteRune(shades[idx])
		}
		// TimelineUtilization is guarded: a run short enough to finish
		// before its first sample renders an empty row and 0.0% rather
		// than NaN.
		fmt.Printf("%-3s |%s| %d cycles, %.1f%% mean util\n",
			d, row.String(), res.Makespan, 100*res.Stats.TimelineUtilization())
	}
}
