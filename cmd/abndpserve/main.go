// Command abndpserve is the long-running simulation service: an HTTP/JSON
// front end over the benchmark harness's warm memo cache and worker pool,
// serving simulation jobs to many concurrent clients with request dedup,
// bounded-queue backpressure, and graceful drain on SIGTERM.
//
// Usage:
//
//	abndpserve                        # serve on :8080
//	abndpserve -addr :9000 -j 8       # 8 simulation workers
//	abndpserve -id b1                 # named backend inside an abndpproxy fleet
//	abndpserve -quick                 # shrunken default workloads (demo)
//	abndpserve -queue 128             # larger pending-job queue
//	abndpserve -check                 # audit every simulation
//	abndpserve -rundeadline 2m        # per-job wall-clock deadline
//	abndpserve -trace-dir traces      # one Perfetto trace per executed job
//	abndpserve -log text              # human-readable logs (default json)
//
// Quick start (see docs/SERVING.md for the API, docs/OBSERVABILITY.md for
// the metrics/tracing surface):
//
//	abndpserve -quick &
//	curl -s -X POST localhost:8080/v1/runs -d '{"app":"pr","design":"O"}'
//	curl -s 'localhost:8080/v1/runs/run-000001?wait=60s'
//	curl -s localhost:8080/v1/experiments/tab1
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics          # Prometheus exposition
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abndp/internal/bench"
	"abndp/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		id       = flag.String("id", "", "backend ID within a serving fleet (echoed as X-ABNDP-Backend and in job statuses; see abndpproxy)")
		jobs     = flag.Int("j", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		serial   = flag.Bool("serial", false, "one simulation at a time (equivalent to -j 1)")
		queue    = flag.Int("queue", 64, "pending-job queue capacity (full queue returns 429)")
		quick    = flag.Bool("quick", false, "shrink default workload sizings to smoke-test scale")
		chk      = flag.Bool("check", false, "audit every simulation (invariants + dual-run hash; roughly doubles cost)")
		rdl      = flag.Duration("rundeadline", 0, "per-job wall-clock deadline; a job past it fails (0 = the 10m default, negative disables)")
		drainTO  = flag.Duration("draintimeout", 2*time.Minute, "graceful-drain bound on SIGTERM/SIGINT")
		bjson    = flag.String("benchjson", "", "write harness metrics to this JSON file on shutdown")
		ckptOn   = flag.Bool("ckpt", true, "share a checkpoint store across requests: jobs varying only late-binding scheduler knobs reuse earlier jobs' placement vectors (byte-identical results; docs/PERF.md)")
		engJobs  = flag.Int("enginejobs", 0, "precompute workers per simulation (parallel engine; 0 disables, needs -ckpt)")
		traceDir = flag.String("trace-dir", "", "write one Perfetto trace per executed job to this directory (serve-tier request spans + engine tracks, keyed by request ID)")
		logFmt   = flag.String("log", "json", "structured log format on stderr: json or text")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFmt, *logLevel)
	if err != nil {
		fatal(err)
	}

	// The same fail-fast flag validation as abndpbench: a negative -j or a
	// contradictory -serial -j N is an error, not a silent clamp.
	workers, err := bench.ValidateWorkers(*jobs, *serial)
	if err != nil {
		fatal(err)
	}
	if *queue <= 0 {
		fatal(fmt.Errorf("abndpserve: queue capacity must be positive (got %d)", *queue))
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
	}

	srv := serve.New(serve.Config{
		ID:            *id,
		Workers:       workers,
		QueueSize:     *queue,
		RunDeadline:   *rdl,
		Quick:         *quick,
		Check:         *chk,
		Checkpoint:    *ckptOn,
		EngineWorkers: *engJobs,
		TraceDir:      *traceDir,
		Logger:        logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Info("serving", "addr", ln.Addr().String(),
		"workers", srv.Runner().Workers(), "queue", *queue,
		"quick", *quick, "check", *chk, "trace_dir", *traceDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(err)
	}
	stop()

	// Graceful drain: admissions close first (new submissions see 503 and
	// /readyz flips to "draining"), then queued and running jobs finish,
	// bounded by -draintimeout. The listener stays open for the whole
	// drain so clients can still poll results and fleet probes observe
	// "draining" rather than a dead socket; it closes only once the pool
	// is idle.
	logger.Info("draining", "timeout", drainTO.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Error("drain timed out", "err", err.Error())
	}
	_ = httpSrv.Shutdown(dctx)

	// Flush harness metrics now that the pool is idle.
	m := srv.Runner().Metrics()
	if *bjson != "" {
		if err := m.WriteJSON(*bjson); err != nil {
			fatal(err)
		}
	}
	logger.Info("drained", "runs", m.Runs, "failures", len(m.Failures),
		"events_total", m.EventsTotal, "events_per_sec", m.EventsPerSec)
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// buildLogger constructs the stderr slog logger from the -log/-log-level
// flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log %q (json or text)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abndpserve:", err)
	os.Exit(1)
}
