// Command abndpserve is the long-running simulation service: an HTTP/JSON
// front end over the benchmark harness's warm memo cache and worker pool,
// serving simulation jobs to many concurrent clients with request dedup,
// bounded-queue backpressure, and graceful drain on SIGTERM.
//
// Usage:
//
//	abndpserve                        # serve on :8080
//	abndpserve -addr :9000 -j 8       # 8 simulation workers
//	abndpserve -quick                 # shrunken default workloads (demo)
//	abndpserve -queue 128             # larger pending-job queue
//	abndpserve -check                 # audit every simulation
//	abndpserve -rundeadline 2m        # per-job wall-clock deadline
//
// Quick start (see docs/SERVING.md for the API):
//
//	abndpserve -quick &
//	curl -s -X POST localhost:8080/v1/runs -d '{"app":"pr","design":"O"}'
//	curl -s 'localhost:8080/v1/runs/run-000001?wait=60s'
//	curl -s localhost:8080/v1/experiments/tab1
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abndp/internal/bench"
	"abndp/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		jobs    = flag.Int("j", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		serial  = flag.Bool("serial", false, "one simulation at a time (equivalent to -j 1)")
		queue   = flag.Int("queue", 64, "pending-job queue capacity (full queue returns 429)")
		quick   = flag.Bool("quick", false, "shrink default workload sizings to smoke-test scale")
		chk     = flag.Bool("check", false, "audit every simulation (invariants + dual-run hash; roughly doubles cost)")
		rdl     = flag.Duration("rundeadline", 0, "per-job wall-clock deadline; a job past it fails (0 = the 10m default, negative disables)")
		drainTO = flag.Duration("draintimeout", 2*time.Minute, "graceful-drain bound on SIGTERM/SIGINT")
		bjson   = flag.String("benchjson", "", "write harness metrics to this JSON file on shutdown")
		ckptOn  = flag.Bool("ckpt", true, "share a checkpoint store across requests: jobs varying only late-binding scheduler knobs reuse earlier jobs' placement vectors (byte-identical results; docs/PERF.md)")
		engJobs = flag.Int("enginejobs", 0, "precompute workers per simulation (parallel engine; 0 disables, needs -ckpt)")
	)
	flag.Parse()

	// The same fail-fast flag validation as abndpbench: a negative -j or a
	// contradictory -serial -j N is an error, not a silent clamp.
	workers, err := bench.ValidateWorkers(*jobs, *serial)
	if err != nil {
		fatal(err)
	}
	if *queue <= 0 {
		fatal(fmt.Errorf("abndpserve: queue capacity must be positive (got %d)", *queue))
	}

	srv := serve.New(serve.Config{
		Workers:       workers,
		QueueSize:     *queue,
		RunDeadline:   *rdl,
		Quick:         *quick,
		Check:         *chk,
		Checkpoint:    *ckptOn,
		EngineWorkers: *engJobs,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "abndpserve: serving on http://%s (workers=%d queue=%d quick=%v check=%v)\n",
		ln.Addr(), srv.Runner().Workers(), *queue, *quick, *chk)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(err)
	}
	stop()

	// Graceful drain: close admissions first (new submissions see 503 /
	// connection refused), then let queued and running jobs finish, bounded
	// by -draintimeout.
	fmt.Fprintln(os.Stderr, "abndpserve: draining (finishing queued and running jobs)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(dctx) }()
	_ = httpSrv.Shutdown(dctx)
	if err := <-drained; err != nil {
		fmt.Fprintf(os.Stderr, "abndpserve: drain timed out: %v\n", err)
	}

	// Flush harness metrics now that the pool is idle.
	m := srv.Runner().Metrics()
	if *bjson != "" {
		if err := m.WriteJSON(*bjson); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "abndpserve: drained; %d simulations executed, %d failures\n",
		m.Runs, len(m.Failures))
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "abndpserve:", err)
	os.Exit(1)
}
