// Command abndpperf reads the longitudinal benchmark records
// (BENCH_<date>.json, written by `make bench` / abndpbench -benchjson) and
// reports the harness's performance trajectory, optionally gating CI on a
// head-vs-baseline regression.
//
// Usage:
//
//	abndpperf                                # trajectory table over ./BENCH_*.json
//	abndpperf -dir path [-svg out.svg]       # elsewhere, plus an SVG chart
//	abndpperf -base old.json -head new.json -threshold 0.5
//	                                         # diff mode: exit 1 on any metric
//	                                         # more than 50% worse than base
//
// Diff mode compares ratio-stable signals only (events/sec, total and
// per-experiment seconds); metrics absent or zero on either side are
// skipped, so table-only experiments never read as collapses to zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abndp/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the regression
// gate's behavior is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abndpperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", ".", "directory holding BENCH_*.json records")
		svg       = fs.String("svg", "", "also write the trajectory as an SVG line chart")
		base      = fs.String("base", "", "baseline record (diff mode; requires -head)")
		head      = fs.String("head", "", "head record to gate (diff mode; requires -base)")
		threshold = fs.Float64("threshold", 0.5, "tolerated fractional regression in diff mode (0.5 = fail beyond 50% worse)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*base == "") != (*head == "") {
		fmt.Fprintln(stderr, "abndpperf: -base and -head go together")
		return 2
	}

	if *base != "" {
		return diff(*base, *head, *threshold, stdout, stderr)
	}
	return trajectory(*dir, *svg, stdout, stderr)
}

func trajectory(dir, svg string, stdout, stderr io.Writer) int {
	paths, err := perf.Discover(dir)
	if err != nil {
		fmt.Fprintf(stderr, "abndpperf: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "abndpperf: no BENCH_*.json records in %s\n", dir)
		return 2
	}
	files, err := perf.Load(paths)
	if err != nil {
		fmt.Fprintf(stderr, "abndpperf: %v\n", err)
		return 2
	}
	perf.WriteTrajectory(stdout, files)
	if svg != "" {
		doc, err := perf.TrajectorySVG(files)
		if err != nil {
			fmt.Fprintf(stderr, "abndpperf: %v\n", err)
			return 2
		}
		if err := os.WriteFile(svg, []byte(doc), 0o644); err != nil {
			fmt.Fprintf(stderr, "abndpperf: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", svg)
	}
	return 0
}

func diff(basePath, headPath string, threshold float64, stdout, stderr io.Writer) int {
	files, err := perf.Load([]string{basePath, headPath})
	if err != nil {
		fmt.Fprintf(stderr, "abndpperf: %v\n", err)
		return 2
	}
	// Load sorts by date; index by path so -base stays the baseline even
	// when head predates it.
	base, head := files[0], files[1]
	if base.Path != basePath {
		base, head = head, base
	}
	regs, err := perf.Diff(base, head, threshold)
	if err != nil {
		fmt.Fprintf(stderr, "abndpperf: %v\n", err)
		return 2
	}
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "ok: %s vs %s — no metric more than %.0f%% worse\n",
			headPath, basePath, threshold*100)
		return 0
	}
	fmt.Fprintf(stdout, "REGRESSION: %s vs %s (threshold %.0f%%)\n", headPath, basePath, threshold*100)
	for _, r := range regs {
		fmt.Fprintf(stdout, "  %s\n", r)
	}
	return 1
}
