package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"abndp/internal/bench"
)

func write(t *testing.T, dir, name string, m bench.Metrics) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := m.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func metrics(date string, eps float64) bench.Metrics {
	return bench.Metrics{
		Date:         date,
		Quick:        true,
		Runs:         10,
		SimSeconds:   1,
		EventsTotal:  int64(eps),
		EventsPerSec: eps,
		TotalSeconds: 2,
		Experiments:  []bench.ExperimentTiming{{Name: "fig6", Seconds: 0.5}},
	}
}

// TestGateFailsOnSyntheticRegression is the CI regression gate's contract:
// a head record with a >threshold throughput collapse exits 1; a healthy
// head exits 0.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "BENCH_base.json", metrics("2026-08-01T00:00:00Z", 100000))
	bad := write(t, dir, "BENCH_bad.json", metrics("2026-08-08T00:00:00Z", 5000)) // 95% drop
	good := write(t, dir, "BENCH_good.json", metrics("2026-08-08T00:00:00Z", 90000))

	var out, errBuf bytes.Buffer
	if code := run([]string{"-base", base, "-head", bad, "-threshold", "0.5"}, &out, &errBuf); code != 1 {
		t.Fatalf("synthetic regression exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "events_per_sec") {
		t.Errorf("regression report missing detail:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-base", base, "-head", good, "-threshold", "0.5"}, &out, &errBuf); code != 0 {
		t.Fatalf("healthy head exit = %d, want 0\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("healthy diff should report ok:\n%s", out.String())
	}
}

func TestTrajectoryModeAndSVG(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_20260801.json", metrics("2026-08-01T00:00:00Z", 100000))
	write(t, dir, "BENCH_20260808.json", metrics("2026-08-08T00:00:00Z", 120000))
	svg := filepath.Join(dir, "traj.svg")

	var out, errBuf bytes.Buffer
	if code := run([]string{"-dir", dir, "-svg", svg}, &out, &errBuf); code != 0 {
		t.Fatalf("trajectory exit = %d\nstderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"20260801", "20260808", "fig6", "wrote"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlagCombos(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-base", "x.json"}, &out, &errBuf); code != 2 {
		t.Errorf("-base without -head exit = %d, want 2", code)
	}
	if code := run([]string{"-dir", "/nonexistent-dir-xyz"}, &out, &errBuf); code != 2 {
		t.Errorf("empty dir exit = %d, want 2", code)
	}
}
