// Command abndphypo runs a declarative hypothesis campaign: a JSON spec
// (config grid × seeds × policies × load levels) expands into simulation
// runs through the bench harness's memoized executor, aggregates each cell
// into mean ± 95% CI, extracts the Pareto frontier over the declared
// metric pair, and writes a FINDINGS report with a confirmed / refuted /
// inconclusive verdict gated on the declared minimum effect size.
//
// Usage:
//
//	abndphypo -spec examples/hypotheses/h1_hybrid_alpha.json -out findings/
//	abndphypo -spec spec.json -quick -j 8     # shrunken workloads, 8 workers
//	abndphypo -spec spec.json -check          # audit every run
//	abndphypo -policies                       # list registered policies
//
// The report is a pure function of the spec: rerunning an identical spec
// produces byte-identical FINDINGS.md and findings.json. See
// docs/HYPOTHESES.md for the spec grammar and verdict semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"abndp/internal/bench"
	"abndp/internal/hypo"
	"abndp/internal/sched"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the campaign spec JSON (required)")
		outDir   = flag.String("out", "findings", "directory for FINDINGS.md and findings.json (created; files are prefixed with the spec name)")
		quick    = flag.Bool("quick", false, "shrink workload defaults for a fast smoke run (explicit spec sizes still win)")
		jobs     = flag.Int("j", 0, "worker goroutines for simulation runs (0 = GOMAXPROCS)")
		serial   = flag.Bool("serial", false, "run simulations one at a time (equivalent to -j 1)")
		chk      = flag.Bool("check", false, "audit every run (invariant checker armed)")
		policies = flag.Bool("policies", false, "list the registered scheduler policies and exit")
		quiet    = flag.Bool("q", false, "suppress the report on stdout (files are still written)")
	)
	flag.Parse()

	if *policies {
		fmt.Println("registered scheduler policies:")
		fmt.Println(sched.Describe())
		return
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "abndphypo: -spec is required (or -policies)")
		flag.Usage()
		os.Exit(2)
	}
	workers, err := bench.ValidateWorkers(*jobs, *serial)
	if err != nil {
		fatalf("%v", err)
	}

	spec, err := hypo.LoadFile(*specPath)
	if err != nil {
		fatalf("%v", err)
	}

	r := bench.NewRunner(io.Discard)
	r.SetQuick(*quick)
	r.SetWorkers(workers)

	out, err := spec.Run(context.Background(), r, *chk)
	if err != nil {
		fatalf("%v", err)
	}

	md := hypo.RenderFindings(out)
	js, err := hypo.RenderJSON(out)
	if err != nil {
		fatalf("render json: %v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	mdPath := filepath.Join(*outDir, spec.Name+"_FINDINGS.md")
	jsPath := filepath.Join(*outDir, spec.Name+"_findings.json")
	if err := os.WriteFile(mdPath, md, 0o644); err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(jsPath, js, 0o644); err != nil {
		fatalf("%v", err)
	}

	if !*quiet {
		os.Stdout.Write(md)
	}
	status := "no verdict declared"
	if out.Verdict != nil {
		status = out.Verdict.Status
	}
	fmt.Fprintf(os.Stderr, "abndphypo: %s: %s (%d runs) -> %s, %s\n", spec.Name, status, out.Runs, mdPath, jsPath)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abndphypo: "+format+"\n", args...)
	os.Exit(1)
}
