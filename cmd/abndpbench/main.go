// Command abndpbench regenerates the paper's evaluation: every table and
// figure of §7, printed as text tables of the same normalized metrics.
//
// Usage:
//
//	abndpbench                 # the full suite (Tables 1-2, Figures 2-18)
//	abndpbench -exp fig6,fig8  # selected experiments
//	abndpbench -quick          # shrunken workloads (smoke test)
//	abndpbench -j 8            # simulate on 8 worker goroutines
//	abndpbench -serial         # one run at a time (same output, slower)
//	abndpbench -benchjson f    # write harness wall-clock metrics to f
//	abndpbench -check          # audit every run (invariants + dual-run hash)
//	abndpbench -engine parallel -ckpt  # checkpoint store + precompute pool
//	abndpbench -warmsweep      # cold-vs-warm re-simulation speedup sweep
//	abndpbench -remote URL     # render on a running abndpserve instead
//
// Simulation runs are planned up front and executed on a worker pool
// (GOMAXPROCS-wide by default); each run stays single-goroutine, so the
// tables are byte-identical at any -j.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"abndp/client"
	"abndp/internal/bench"
	"abndp/internal/ckpt"
	"abndp/internal/obs"
)

func main() {
	var (
		exps   = flag.String("exp", "all", "comma-separated experiments (tab1 tab2 fig2 fig6..fig18, ablrepl ablprobe ablhint abltopo, resilience) or 'all'")
		quick  = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		svg    = flag.String("svg", "", "also render the figures as SVG files into this directory")
		jobs   = flag.Int("j", 0, "worker goroutines for simulation runs (0 = GOMAXPROCS)")
		serial = flag.Bool("serial", false, "run simulations one at a time (equivalent to -j 1)")
		bjson  = flag.String("benchjson", "", "write per-experiment wall-clock metrics to this JSON file (e.g. BENCH_20260805.json)")
		prog   = flag.Bool("progress", false, "report per-experiment and per-run progress to stderr")
		srv    = flag.String("pprof", "", "serve pprof+expvar+Prometheus /metrics debug HTTP on this address (e.g. :6060)")
		cpup   = flag.String("cpuprofile", "", "write a CPU profile of the harness to this file")
		memp   = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
		rdl    = flag.Duration("rundeadline", 0, "per-run wall-clock deadline; a run past it is recorded as hung and skipped (0 = the 10m default, negative disables)")
		chk    = flag.Bool("check", false, "audit every run: invariant checker armed plus a dual-run determinism hash (roughly doubles simulation time; violations print and exit non-zero)")
		remote = flag.String("remote", "", "fetch the experiments from a running abndpserve at this base URL (e.g. http://localhost:8080) instead of simulating locally")
		engine = flag.String("engine", "serial", "simulation engine: 'serial' (golden default), 'checkpoint' (prefix-key store reuse), or 'parallel' (store + background precompute workers); results are byte-identical either way")
		ckptOn = flag.Bool("ckpt", false, "shorthand for -engine checkpoint")
		engj   = flag.Int("enginejobs", 0, "precompute workers per run for -engine parallel (0 = GOMAXPROCS/2, min 1)")
		warm   = flag.Bool("warmsweep", false, "also run the cold-vs-warm re-simulation sweep (checkpoint/delta speedup measurement; result lands in -benchjson)")
	)
	flag.Parse()

	// Validate the worker flags before doing any work: a negative -j or a
	// contradictory -serial -j N is a 2-exit usage error, not a silent
	// clamp (the same rule abndpserve applies).
	workers, err := bench.ValidateWorkers(*jobs, *serial)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abndpbench:", err)
		os.Exit(2)
	}

	if *remote != "" {
		runRemote(*remote, *exps)
		return
	}

	if *srv != "" {
		addr, err := obs.StartDebugServer(*srv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "abndpbench: debug server at http://%s/debug/pprof/ (metrics at /metrics)\n", addr)
	}
	if *cpup != "" {
		f, err := os.Create(*cpup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	r := bench.NewRunner(os.Stdout)
	r.SetQuick(*quick)
	if *prog {
		r.SetProgress(os.Stderr)
	}
	r.SetWorkers(workers)
	if *rdl != 0 {
		r.SetRunDeadline(*rdl)
	}
	r.SetCheck(*chk)

	if *ckptOn && *engine == "serial" {
		*engine = "checkpoint"
	}
	switch *engine {
	case "serial":
	case "checkpoint":
		r.SetCheckpointStore(ckpt.NewStore(0))
	case "parallel":
		r.SetCheckpointStore(ckpt.NewStore(0))
		n := *engj
		if n <= 0 {
			if n = runtime.GOMAXPROCS(0) / 2; n < 1 {
				n = 1
			}
		}
		r.SetEngineParallel(n)
	default:
		fmt.Fprintf(os.Stderr, "abndpbench: unknown -engine %q (serial, checkpoint, parallel)\n", *engine)
		os.Exit(2)
	}

	start := time.Now()
	if *exps == "all" {
		r.RunAll()
	} else if *exps == "none" { // e.g. -exp none -warmsweep: just the sweep below
	} else {
		for _, e := range strings.Split(*exps, ",") {
			if err := r.Run(strings.TrimSpace(e)); err != nil {
				fmt.Fprintln(os.Stderr, "abndpbench:", err)
				os.Exit(1)
			}
		}
	}
	if *warm {
		r.RunWarmSweep()
	}
	if *svg != "" {
		files, err := r.RenderSVGs(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d SVG figures to %s\n", len(files), *svg)
	}
	if *bjson != "" {
		if err := r.Metrics().WriteJSON(*bjson); err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
	}
	if *memp != "" {
		f, err := os.Create(*memp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		f.Close()
	}
	m := r.Metrics()
	fmt.Printf("\ncompleted in %.1fs: %d runs, %.3g engine events, %.3g events/sec (%s engine)\n",
		time.Since(start).Seconds(), m.Runs, float64(m.EventsTotal), m.EventsPerSec, m.Engine)
	if m.Checkpoint != nil {
		fmt.Printf("checkpoint store: %d hits, %d misses, %d inserts, %d shards, %.1f MiB\n",
			m.Checkpoint.Hits, m.Checkpoint.Misses, m.Checkpoint.Inserts,
			m.Checkpoint.Shards, float64(m.Checkpoint.Bytes)/(1<<20))
	}
	if ws := m.WarmSweep; ws != nil {
		fmt.Printf("warm sweep: %.2fx speedup over %d points (cold %.2fs, prime %.2fs, warm %.2fs)\n",
			ws.Speedup, ws.Points, ws.ColdSeconds, ws.PrimeSeconds, ws.WarmSeconds)
	}

	exit := 0

	// Crash-isolated runs that panicked or hung: the sweep above still
	// rendered (their rows hold placeholders), but the harness exits
	// non-zero so CI and scripts notice.
	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "\nabndpbench: %d run(s) FAILED (rows hold placeholder values):\n", len(fails))
		for _, f := range fails {
			kind := "panic"
			if f.Hung {
				kind = "hung"
			}
			fmt.Fprintf(os.Stderr, "  [%s] %s: %s\n", kind, f.Key, f.Err)
		}
		exit = 1
	}

	// Invariant-audit verdict (-check): the violations are also in the
	// metrics JSON when -benchjson was given.
	if *chk {
		runs, evals := r.CheckCounts()
		if vs := r.CheckViolations(); len(vs) > 0 {
			fmt.Fprintf(os.Stderr, "\nabndpbench: audit FAILED: %d violation(s) over %d runs (%d invariant evaluations):\n",
				len(vs), runs, evals)
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "  %s: %s\n", v.Key, v.Violation)
			}
			exit = 1
		} else {
			fmt.Printf("audit PASSED: %d runs, %d invariant evaluations, 0 violations\n", runs, evals)
		}
	}
	if exit != 0 {
		os.Exit(exit) // note: skips the profile-writer defers, like any failed run
	}
}

// runRemote renders the requested experiments on a running abndpserve
// instance instead of simulating locally: the service's warm cache pays
// for each run once across every client.
func runRemote(baseURL, exps string) {
	var names []string
	if exps == "all" {
		names = append(names, bench.Experiments...)
		names = append(names, bench.AblationExperiments...)
		names = append(names, bench.ResilienceExperiments...)
	} else {
		for _, e := range strings.Split(exps, ",") {
			names = append(names, strings.TrimSpace(e))
		}
	}
	c := client.New(baseURL)
	ctx := context.Background()
	if h, err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "abndpbench: %s not healthy: %v\n", baseURL, err)
		os.Exit(1)
	} else {
		fmt.Fprintf(os.Stderr, "abndpbench: rendering %d experiment(s) on %s (%d workers, %d runs cached)\n",
			len(names), baseURL, h.Workers, h.Runs)
	}
	start := time.Now()
	for _, name := range names {
		out, err := c.Experiment(ctx, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abndpbench:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	}
	fmt.Printf("\ncompleted in %.1fs\n", time.Since(start).Seconds())
}
