package abndp

import (
	"fmt"

	"abndp/internal/task"
)

// This file provides the paper's §3.1 programming model as a thin layer
// over the App interface: tasks are (function, timestamp, hint, args)
// tuples created with EnqueueTask, mirroring Swarm's
//
//	enqueue_task(func_ptr, timestamp, hint, args...)
//
// Example — Algorithm 1's Page Rank task:
//
//	prog := abndp.NewProgram("pr")
//	var taskPageRank abndp.TaskFunc
//	taskPageRank = func(rt *abndp.Runtime, t *abndp.Task) {
//	    v := t.Elem
//	    ... compute nextPr[v] from neighbors ...
//	    if !converged {
//	        rt.EnqueueTask(taskPageRank, t.TS+1, hint(v), v)
//	    }
//	}
//
// The runtime handles placement, prefetching, bulk synchronization, and
// cache invalidation exactly as for built-in workloads.

// TaskFunc is the body of a task under the Swarm-style model. It runs once
// per task; child tasks are created with rt.EnqueueTask. Use rt.Charge to
// report the task's computation cost (defaults to a small constant).
type TaskFunc func(rt *Runtime, t *Task)

// Program is a workload expressed as Swarm-style tasks. It implements App.
type Program struct {
	name  string
	setup func(rt *Runtime)
	rt    *Runtime
}

// Runtime is the per-run execution context of a Program: it creates tasks,
// allocates primary data, and charges computation.
type Runtime struct {
	sys  *System
	prog *Program

	// emit targets: exactly one of these is active at a time.
	initial func(*Task)
	ctx     *ExecCtx

	funcs   []TaskFunc
	funcIDs map[string]int
	barrier barrierFunc

	charged int64
}

// NewProgram creates an empty Swarm-style workload. The setup callback
// allocates primary data (via rt.NewArray) and enqueues the timestamp-0
// tasks with rt.EnqueueTask.
func NewProgram(name string, setup func(rt *Runtime)) *Program {
	return &Program{name: name, setup: setup}
}

// Name implements App.
func (p *Program) Name() string { return p.name }

// Setup implements App.
func (p *Program) Setup(sys *System) {
	p.rt = &Runtime{sys: sys, prog: p, funcIDs: make(map[string]int)}
}

// InitialTasks implements App: it runs the user setup, capturing every
// EnqueueTask call as a timestamp-0 task.
func (p *Program) InitialTasks(emit func(*task.Task)) {
	p.rt.initial = emit
	p.setup(p.rt)
	p.rt.initial = nil
}

// Execute implements App: it dispatches to the task's registered function.
func (p *Program) Execute(t *task.Task, ctx *ExecCtx) int64 {
	rt := p.rt
	rt.ctx = ctx
	rt.charged = 0
	rt.funcs[t.Kind](rt, t)
	rt.ctx = nil
	if rt.charged <= 0 {
		return 10 // nominal task overhead when the body charges nothing
	}
	return rt.charged
}

// EndTimestamp implements App. Programs apply their own bulk updates by
// scheduling a function with rt.AtBarrier (optional).
func (p *Program) EndTimestamp(ts int64) {
	if p.rt.barrier != nil {
		p.rt.barrier(ts)
	}
}

// --- Runtime API ---

// barrier is the optional bulk-update hook.
type barrierFunc = func(ts int64)

// NewArray allocates an interleaved primary-data array (see System.Space
// for other placements).
func (rt *Runtime) NewArray(name string, n, elemSize int) *Array {
	return rt.sys.Space.NewArray(name, n, elemSize, Interleave)
}

// AtBarrier registers f to run at every bulk-synchronous barrier (the
// paper's "all updates are bulk applied at the end").
func (rt *Runtime) AtBarrier(f func(ts int64)) { rt.barrier = f }

// register assigns a stable ID to fn. Functions are identified by the
// pointer of their first registration; passing the same variable works,
// passing a fresh closure each time does not.
func (rt *Runtime) register(fn TaskFunc) int {
	key := fmt.Sprintf("%p", fn)
	if id, ok := rt.funcIDs[key]; ok {
		return id
	}
	rt.funcs = append(rt.funcs, fn)
	rt.funcIDs[key] = len(rt.funcs) - 1
	return len(rt.funcs) - 1
}

// EnqueueTask creates a task running fn at timestamp ts with the given
// hint; elem is the task's main element (also available as t.Elem) and arg
// an optional extra argument. Mirrors the paper's enqueue_task API: during
// setup it creates timestamp-0 tasks; inside a task body it creates
// children for the next timestamp (ts is then informational — the runtime
// enforces TS+1, as the bulk-synchronous model requires).
func (rt *Runtime) EnqueueTask(fn TaskFunc, ts int64, hint Hint, elem int, arg ...int64) {
	if len(hint.Lines) == 0 {
		panic("abndp: EnqueueTask requires a hint with at least the main element's line")
	}
	t := &Task{Kind: rt.register(fn), Elem: elem, TS: ts, Hint: hint}
	if len(arg) > 0 {
		t.Arg = arg[0]
	}
	switch {
	case rt.initial != nil:
		rt.initial(t)
	case rt.ctx != nil:
		rt.ctx.Enqueue(t)
	default:
		panic("abndp: EnqueueTask outside setup or a task body")
	}
}

// Charge reports instrs of computation for the currently executing task.
// Multiple calls accumulate.
func (rt *Runtime) Charge(instrs int64) { rt.charged += instrs }

// Unit returns the NDP unit executing the current task.
func (rt *Runtime) Unit() UnitID {
	if rt.ctx == nil {
		return -1
	}
	return rt.ctx.Unit()
}
