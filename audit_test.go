package abndp

import (
	"strings"
	"testing"
)

func TestAuditRunPassesCleanWorkloads(t *testing.T) {
	cfg := smallConfig()
	for _, w := range []string{"pr", "bfs"} {
		for _, d := range []Design{DesignB, DesignSl, DesignO} {
			res, rep, err := AuditRun(w, d, cfg, smallParams(), false)
			if err != nil {
				t.Fatalf("AuditRun(%q, %v): %v", w, d, err)
			}
			if !rep.Ok() {
				t.Fatalf("AuditRun(%q, %v) failed:\n%s", w, d, rep.String())
			}
			if rep.Checks == 0 {
				t.Fatalf("AuditRun(%q, %v): zero invariant evaluations", w, d)
			}
			if rep.HashA == 0 || rep.HashA != rep.HashB {
				t.Fatalf("AuditRun(%q, %v): dual-run hashes %016x/%016x", w, d, rep.HashA, rep.HashB)
			}
			if res == nil || res.Tasks == 0 {
				t.Fatalf("AuditRun(%q, %v): empty result", w, d)
			}
		}
	}
}

func TestAuditRunPassesUnderFaults(t *testing.T) {
	cfg := smallConfig()
	p, err := ParseFaults("kill:3@2000;dram:0.0002")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = p
	_, rep, err := AuditRun("pr", DesignO, cfg, smallParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("faulty-run audit failed:\n%s", rep.String())
	}
}

func TestAuditRunRejectsBadInput(t *testing.T) {
	if _, _, err := AuditRun("nope", DesignO, smallConfig(), smallParams(), false); err == nil {
		t.Fatal("AuditRun must reject unknown workloads")
	}
	if _, _, err := AuditRun("pr", DesignH, smallConfig(), smallParams(), false); err == nil {
		t.Fatal("AuditRun must reject the host design")
	}
	cfg := smallConfig()
	cfg.CacheWays = 1000
	if _, _, err := AuditRun("pr", DesignO, cfg, smallParams(), false); err == nil {
		t.Fatal("AuditRun must reject invalid configs")
	}
}

func TestAuditReportString(t *testing.T) {
	_, rep, err := AuditRun("bfs", DesignO, smallConfig(), smallParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "audit PASSED") || !strings.Contains(s, "determinism hash") {
		t.Fatalf("unexpected report rendering: %q", s)
	}
}

func TestRunAppCheckedMatchesPlainRun(t *testing.T) {
	cfg := smallConfig()
	app1, err := NewApp("pr", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunApp(app1, DesignO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app2, _ := NewApp("pr", smallParams())
	checked, rep, err := RunAppChecked(app2, DesignO, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("checked run failed audit:\n%s", rep.String())
	}
	if ResultHash(plain) != ResultHash(checked) {
		t.Fatal("checked run diverged from plain run")
	}
}
