// Benchmarks: one per paper table/figure (driving the same harness as
// cmd/abndpbench, at reduced workload sizes so `go test -bench=.` stays
// tractable — run `go run ./cmd/abndpbench` for the paper-scale numbers),
// plus micro-benchmarks of the simulator's hot primitives.
package abndp

import (
	"io"
	"testing"

	"abndp/internal/bench"
)

// benchExperiment runs one harness experiment per iteration at quick sizes.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(io.Discard)
		r.SetQuick(true)
		if err := r.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab01Config(b *testing.B)           { benchExperiment(b, "tab1") }
func BenchmarkTab02Designs(b *testing.B)          { benchExperiment(b, "tab2") }
func BenchmarkFig02Tradeoff(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig06Speedup(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig07Energy(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig08Hops(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig09LoadDist(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Scalability(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11SkewedMapping(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12CampCount(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13CacheKind(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14Capacity(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15Associativity(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16Bypass(b *testing.B)           { benchExperiment(b, "fig16") }
func BenchmarkFig17HybridWeight(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18ExchangeInterval(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkRunPageRank measures one end-to-end simulated run per design.
func BenchmarkRunPageRank(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MeshX, cfg.MeshY = 2, 2
	cfg.UnitBytes = 16 << 20
	p := Params{Scale: 10, Degree: 8, Iters: 2, Seed: 1}
	for _, d := range NDPDesigns {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run("pr", d, cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
